//! The wire protocol between the server node and the display clients:
//! length-prefixed JSON messages over TCP, with bounded message sizes and
//! deadline-aware variants of every exchange.

use crate::frame_delta::WireTile;
use crate::{Result, WallError};
use dv3d::interaction::ConfigOp;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Hard cap on one message body. The largest legitimate message is an
/// `AssignWorkflow` pipeline JSON (a few KiB); anything near this cap is a
/// corrupt or hostile length prefix, and rejecting it keeps a bad client
/// from making the server allocate gigabytes.
pub const MAX_MESSAGE_BYTES: usize = 8 << 20;

/// Protocol revision spoken by [`Message::HelloV2`] clients: adds the
/// dirty-tile frame-delta transport (`FrameKey` / `FrameDelta` /
/// `FramePreview` / `ResyncRequest`). Plain [`Message::Hello`] clients are
/// implicitly revision 1 and never see those messages — the same
/// version-gating discipline as the `.ncr` v1/v2 container.
pub const PROTO_DELTA: u32 = 2;

/// One unit of analysis / rendering work a session submits to the
/// multi-tenant service (see [`crate::service`]). Workloads are synthetic
/// but shaped like the paper's: regridding, reductions, cell renders —
/// each deterministic in its parameters, so identical requests from
/// different sessions are content-addressed duplicates the shared caches
/// collapse into one computation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ServiceWork {
    /// Regrid a seeded synthetic field from a `src`-shaped uniform grid
    /// onto a `dst`-shaped one (plans flow through the shared plan cache).
    Regrid { src: (usize, usize), dst: (usize, usize), seed: u64 },
    /// Deterministic moment reduction over a seeded synthetic series.
    Analysis { seed: u64, len: usize },
    /// Render a small synthetic cell at this resolution (degraded replies
    /// substitute a low-res mirror frame, exactly like a degraded panel).
    Render { width: usize, height: usize, seed: u64 },
}

/// Fidelity of a service reply. Under overload the service answers with
/// coarsened results (the Degraded-panel idea applied to analysis work)
/// before it sheds anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ResultQuality {
    /// Full-resolution result.
    Full,
    /// Coarsened / low-res mirror result produced under overload.
    Degraded,
}

/// Why the service turned a session or request away. Every rejection is
/// explicit — nothing is ever silently dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum RejectReason {
    /// The session cap is reached; no new sessions are admitted.
    SessionCapacity,
    /// The session's token-bucket quota is exhausted.
    OverQuota,
    /// The session's bounded inbox is full.
    InboxFull,
    /// The request was admitted but shed under overload before running.
    Shed,
}

/// Messages exchanged between server and clients.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Message {
    /// Client → server: identify after connecting (also used when a
    /// recovering client re-handshakes after a disconnect).
    Hello { client_id: usize },
    /// Server → client: the 1-cell sub-workflow to own.
    AssignWorkflow {
        /// Serialized `vistrails::Pipeline`.
        pipeline_json: String,
        /// The cell (sink) module id within the pipeline.
        cell_module: u64,
        /// Full-resolution render size for this display.
        width: usize,
        height: usize,
    },
    /// Client → server: the assigned workflow executed and the cell is live.
    Ready { client_id: usize },
    /// Server → client: apply an interaction op (propagated navigation /
    /// configuration from the server GUI).
    Op(ConfigOp),
    /// Server → client: render frame `frame` now.
    Execute { frame: u64 },
    /// Client → server: frame finished.
    FrameDone {
        client_id: usize,
        frame: u64,
        /// Fraction of non-background pixels (sanity signal).
        coverage: f64,
        /// Render wall time in milliseconds.
        render_ms: f64,
    },
    /// Server → client: liveness probe between frames.
    Heartbeat { seq: u64 },
    /// Client → server: heartbeat echo.
    HeartbeatAck { client_id: usize, seq: u64 },
    /// Server → client: shut down cleanly.
    Shutdown,
    /// Client → service: open a multiplexed analysis session.
    SessionOpen { session_id: u64 },
    /// Service → client: the session is admitted.
    SessionAccepted { session_id: u64 },
    /// Service → client: backpressure. The queue depth tells the client
    /// how far behind the service is; a conforming client backs off for
    /// `retry_after_ms` before retrying.
    Busy { session_id: u64, queue_depth: usize, retry_after_ms: u64 },
    /// Service → client: request `request` was turned away (quota, full
    /// inbox, or shed under overload) — retry after the given backoff.
    /// This is the "nothing is silently dropped" guarantee in wire form.
    RetryAfter { session_id: u64, request: u64, retry_after_ms: u64, reason: RejectReason },
    /// Client → service: one unit of work within a session.
    Request { session_id: u64, request: u64, work: ServiceWork },
    /// Service → client: request finished. `digest` fingerprints the
    /// result (so tests can assert determinism), `quality` says whether
    /// overload coarsened it.
    Response {
        session_id: u64,
        request: u64,
        quality: ResultQuality,
        digest: u64,
        compute_ms: f64,
    },
    /// Client → service: close the session and free its slot.
    SessionClose { session_id: u64 },
    /// Client → server: versioned handshake. `proto >=`
    /// [`PROTO_DELTA`] opts the panel into the frame-delta transport;
    /// servers answer v1 [`Message::Hello`] clients exactly as before, so
    /// old clients keep working against new servers.
    HelloV2 { client_id: usize, proto: u32 },
    /// Client → server: a full-frame keyframe — RLE-compressed RGBA8 of the
    /// whole panel, starting a new delta epoch. Sent on the first frame,
    /// on a periodic cadence, and in answer to [`Message::ResyncRequest`].
    FrameKey {
        client_id: usize,
        frame: u64,
        /// Keyframe lineage this message starts.
        epoch: u64,
        /// Always 0 for a keyframe (deltas continue 1, 2, …).
        seq: u64,
        width: usize,
        height: usize,
        /// RLE-compressed RGBA8 (see [`crate::frame_delta::rle_encode`]).
        payload: Vec<u8>,
        /// FNV-1a over the raw (decoded) frame bytes.
        frame_hash: u64,
    },
    /// Client → server: only the tiles that changed since the previous
    /// frame, each hash-guarded; the receiver applies all tiles or none.
    FrameDelta {
        client_id: usize,
        frame: u64,
        /// Must match the receiver's current keyframe lineage.
        epoch: u64,
        /// Strictly sequential within the epoch.
        seq: u64,
        tiles: Vec<WireTile>,
        /// FNV-1a over the full assembled frame after this delta.
        frame_hash: u64,
    },
    /// Client → server: a low-resolution preview sent ahead of the full
    /// frame during camera motion (progressive refinement). Advisory:
    /// carries its own hash but no epoch/seq obligations.
    FramePreview {
        client_id: usize,
        frame: u64,
        epoch: u64,
        width: usize,
        height: usize,
        payload: Vec<u8>,
        hash: u64,
    },
    /// Server → client: this panel's frame content was missing, corrupt or
    /// out of sequence — the next frame must be a keyframe. Resync instead
    /// of degradation: the panel stays live, only its pixel stream restarts.
    ResyncRequest { client_id: usize, epoch: u64 },
}

/// Encodes one message into its wire form (u32-LE length prefix + JSON
/// body) without sending it. Fault-injection paths use this to dribble or
/// truncate a frame byte-by-byte; everything else should call
/// [`write_message_deadline`].
pub fn encode_frame(msg: &Message) -> Result<Vec<u8>> {
    let body = serde_json::to_vec(msg).map_err(|e| WallError::Protocol(e.to_string()))?;
    if body.len() > MAX_MESSAGE_BYTES {
        return Err(WallError::Protocol(format!(
            "refusing to send {} byte message (cap {MAX_MESSAGE_BYTES})",
            body.len()
        )));
    }
    let mut framed = (body.len() as u32).to_le_bytes().to_vec();
    framed.extend_from_slice(&body);
    Ok(framed)
}

/// Writes one message (u32-LE length prefix + JSON body).
pub fn write_message(stream: &mut impl Write, msg: &Message) -> Result<()> {
    let framed = encode_frame(msg)?;
    stream.write_all(&framed)?;
    stream.flush()?;
    Ok(())
}

/// Reads one message; blocks until a full frame arrives. Length prefixes
/// above [`MAX_MESSAGE_BYTES`] are rejected as protocol errors before any
/// allocation happens.
pub fn read_message(stream: &mut impl Read) -> Result<Message> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_MESSAGE_BYTES {
        return Err(WallError::Protocol(format!(
            "implausible message length {len} (cap {MAX_MESSAGE_BYTES})"
        )));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    serde_json::from_slice(&body).map_err(|e| WallError::Protocol(e.to_string()))
}

/// True when an I/O error is a deadline expiry rather than a dead peer.
/// (`read` under `set_read_timeout` reports `WouldBlock` on some platforms
/// and `TimedOut` on others.)
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Reads one message with a deadline covering the *whole frame*, not just
/// the next syscall. Expiry maps to [`WallError::Timeout`] (`what` names
/// the exchange for diagnostics); any other failure keeps its I/O or
/// protocol classification. The socket's timeout is cleared again before
/// returning so later blocking reads behave normally.
///
/// The total-frame budget is what defeats a slow-loris peer: with a plain
/// per-read timeout, a client dribbling one byte every few milliseconds
/// makes every syscall "succeed" and holds the reader hostage for as long
/// as it likes. Here one clock covers length prefix and body together, and
/// the entire message must land before it runs out.
pub fn read_message_deadline(
    stream: &mut TcpStream,
    deadline: Duration,
    what: &str,
) -> Result<Message> {
    let end = std::time::Instant::now() + deadline;
    let out = (|| {
        let mut len_buf = [0u8; 4];
        read_exact_deadline(stream, &mut len_buf, end)?;
        let len = u32::from_le_bytes(len_buf) as usize;
        if len > MAX_MESSAGE_BYTES {
            return Err(WallError::Protocol(format!(
                "implausible message length {len} (cap {MAX_MESSAGE_BYTES})"
            )));
        }
        let mut body = vec![0u8; len];
        read_exact_deadline(stream, &mut body, end)?;
        serde_json::from_slice(&body).map_err(|e| WallError::Protocol(e.to_string()))
    })();
    stream.set_read_timeout(None).ok();
    out.map_err(|e| match e {
        WallError::Io(io) if is_timeout(&io) => {
            WallError::Timeout(format!("{what} not received within {deadline:?}"))
        }
        other => other,
    })
}

/// Fills `buf` from the stream, giving up (with a timeout-kinded I/O
/// error) once `end` passes — regardless of how many partial reads kept
/// "succeeding" along the way. The caller restores the socket's blocking
/// mode.
fn read_exact_deadline(
    stream: &mut TcpStream,
    buf: &mut [u8],
    end: std::time::Instant,
) -> Result<()> {
    let mut filled = 0;
    while filled < buf.len() {
        let remaining = end.saturating_duration_since(std::time::Instant::now());
        if remaining.is_zero() {
            return Err(WallError::Io(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "frame deadline expired",
            )));
        }
        // set_read_timeout rejects Some(0); the clamp keeps the last slice legal
        stream.set_read_timeout(Some(remaining.max(Duration::from_millis(1))))?;
        let Some(rest) = buf.get_mut(filled..) else { break };
        match stream.read(rest) {
            Ok(0) => {
                return Err(WallError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "peer closed mid-frame",
                )))
            }
            Ok(n) => filled += n,
            // a sliced read expiring is not fatal by itself; the loop's
            // remaining-time check decides when the whole frame is late
            Err(e) if is_timeout(&e) => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

/// Waits indefinitely for the next message, in bounded slices. Unlike
/// [`read_message_deadline`], a silent peer is not an error here — an idle
/// command loop is a legitimate state — but the wait never blocks longer
/// than `slice` at a time, and once bytes start arriving the whole frame
/// must complete within `deadline`. Peeking (not reading) during the idle
/// wait means a slice expiry can never desynchronise a half-received frame.
pub fn read_message_idle(
    stream: &mut TcpStream,
    slice: Duration,
    deadline: Duration,
    what: &str,
) -> Result<Message> {
    let mut probe = [0u8; 1];
    loop {
        stream.set_read_timeout(Some(slice))?;
        let peeked = stream.peek(&mut probe);
        stream.set_read_timeout(None).ok();
        match peeked {
            // data (or EOF) ready: read_message_deadline reports either
            Ok(_) => return read_message_deadline(stream, deadline, what),
            Err(e) if is_timeout(&e) => continue,
            Err(e) => return Err(e.into()),
        }
    }
}

/// Like [`read_message_idle`] but with a bounded idle wait: if no bytes
/// arrive within `max_idle`, returns `Ok(None)` (an idle session is not an
/// error — the caller typically checks a shutdown flag and calls again).
/// Once bytes start arriving the whole frame must complete within
/// `deadline`, so a slow-loris peer trips [`WallError::Timeout`] instead of
/// wedging the connection thread. Peeking during the idle wait means an
/// idle expiry can never desynchronise a half-received frame.
pub fn read_message_idle_bounded(
    stream: &mut TcpStream,
    slice: Duration,
    deadline: Duration,
    max_idle: Duration,
    what: &str,
) -> Result<Option<Message>> {
    let idle_deadline = std::time::Instant::now() + max_idle;
    let mut probe = [0u8; 1];
    loop {
        stream.set_read_timeout(Some(slice))?;
        let peeked = stream.peek(&mut probe);
        stream.set_read_timeout(None).ok();
        match peeked {
            // data (or EOF) ready: read_message_deadline reports either
            Ok(_) => return read_message_deadline(stream, deadline, what).map(Some),
            Err(e) if is_timeout(&e) => {
                if std::time::Instant::now() >= idle_deadline {
                    return Ok(None);
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
}

/// Writes one message with a deadline; expiry maps to [`WallError::Timeout`].
pub fn write_message_deadline(
    stream: &mut TcpStream,
    msg: &Message,
    deadline: Duration,
    what: &str,
) -> Result<()> {
    stream.set_write_timeout(Some(deadline))?;
    let out = write_message(stream, msg);
    stream.set_write_timeout(None).ok();
    out.map_err(|e| match e {
        WallError::Io(io) if is_timeout(&io) => {
            WallError::Timeout(format!("{what} not sent within {deadline:?}"))
        }
        other => other,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dv3d::interaction::{Axis3, CameraOp};

    /// One of every message variant — kept in sync with `Message` by the
    /// match below, which fails to compile when a variant is added here
    /// without a sample.
    fn all_variants() -> Vec<Message> {
        let msgs = vec![
            Message::Hello { client_id: 3 },
            Message::AssignWorkflow {
                pipeline_json: "{}".into(),
                cell_module: 12,
                width: 1920,
                height: 1080,
            },
            Message::Ready { client_id: 3 },
            Message::Op(ConfigOp::MoveSlice { axis: Axis3::Z, delta: 2 }),
            Message::Op(ConfigOp::Camera(CameraOp::Azimuth(15.0))),
            Message::Execute { frame: 7 },
            Message::FrameDone { client_id: 3, frame: 7, coverage: 0.42, render_ms: 12.5 },
            Message::Heartbeat { seq: 11 },
            Message::HeartbeatAck { client_id: 3, seq: 11 },
            Message::Shutdown,
            Message::SessionOpen { session_id: 9 },
            Message::SessionAccepted { session_id: 9 },
            Message::Busy { session_id: 9, queue_depth: 17, retry_after_ms: 40 },
            Message::RetryAfter {
                session_id: 9,
                request: 4,
                retry_after_ms: 25,
                reason: RejectReason::Shed,
            },
            Message::Request {
                session_id: 9,
                request: 4,
                work: ServiceWork::Regrid { src: (8, 16), dst: (6, 12), seed: 1 },
            },
            Message::Request {
                session_id: 9,
                request: 5,
                work: ServiceWork::Analysis { seed: 2, len: 64 },
            },
            Message::Request {
                session_id: 9,
                request: 6,
                work: ServiceWork::Render { width: 32, height: 24, seed: 3 },
            },
            Message::Response {
                session_id: 9,
                request: 4,
                quality: ResultQuality::Degraded,
                digest: 0xDEAD_BEEF,
                compute_ms: 1.25,
            },
            Message::SessionClose { session_id: 9 },
            Message::HelloV2 { client_id: 3, proto: PROTO_DELTA },
            Message::FrameKey {
                client_id: 3,
                frame: 7,
                epoch: 1,
                seq: 0,
                width: 8,
                height: 4,
                payload: vec![128, 10, 20, 30, 255],
                frame_hash: 0x1234_5678_9abc_def0,
            },
            Message::FrameDelta {
                client_id: 3,
                frame: 8,
                epoch: 1,
                seq: 1,
                tiles: vec![WireTile {
                    tx: 0,
                    ty: 0,
                    hash: 0xfeed_f00d,
                    data: vec![4, 1, 2, 3, 255],
                }],
                frame_hash: 0x0dd_ba11,
            },
            Message::FramePreview {
                client_id: 3,
                frame: 8,
                epoch: 1,
                width: 4,
                height: 2,
                payload: vec![8, 0, 0, 0, 255],
                hash: 0xcafe,
            },
            Message::ResyncRequest { client_id: 3, epoch: 1 },
        ];
        for m in &msgs {
            match m {
                Message::Hello { .. }
                | Message::AssignWorkflow { .. }
                | Message::Ready { .. }
                | Message::Op(_)
                | Message::Execute { .. }
                | Message::FrameDone { .. }
                | Message::Heartbeat { .. }
                | Message::HeartbeatAck { .. }
                | Message::Shutdown
                | Message::SessionOpen { .. }
                | Message::SessionAccepted { .. }
                | Message::Busy { .. }
                | Message::RetryAfter { .. }
                | Message::Request { .. }
                | Message::Response { .. }
                | Message::SessionClose { .. }
                | Message::HelloV2 { .. }
                | Message::FrameKey { .. }
                | Message::FrameDelta { .. }
                | Message::FramePreview { .. }
                | Message::ResyncRequest { .. } => {}
            }
        }
        msgs
    }

    #[test]
    fn roundtrip_through_a_buffer() {
        let msgs = all_variants();
        let mut buf: Vec<u8> = Vec::new();
        for m in &msgs {
            write_message(&mut buf, m).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for expect in &msgs {
            let got = read_message(&mut cursor).unwrap();
            assert_eq!(&got, expect);
        }
    }

    #[test]
    fn truncated_stream_errors() {
        let mut buf: Vec<u8> = Vec::new();
        write_message(&mut buf, &Message::Shutdown).unwrap();
        buf.truncate(buf.len() - 1);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(read_message(&mut cursor).is_err());
    }

    #[test]
    fn oversized_length_rejected() {
        // just above the cap, and the pathological u32::MAX
        for len in [(MAX_MESSAGE_BYTES + 1) as u32, u32::MAX] {
            let mut buf = len.to_le_bytes().to_vec();
            buf.extend_from_slice(b"xx");
            let mut cursor = std::io::Cursor::new(buf);
            let err = read_message(&mut cursor).unwrap_err();
            assert!(matches!(err, WallError::Protocol(_)), "{err}");
        }
        // exactly at the cap the length itself is legal (the read then
        // fails on the missing body, an Io error, not a Protocol one)
        let mut buf = (MAX_MESSAGE_BYTES as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(b"xx");
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(read_message(&mut cursor), Err(WallError::Io(_))));
    }

    #[test]
    fn works_over_real_tcp() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let msg = read_message(&mut stream).unwrap();
            write_message(&mut stream, &msg).unwrap(); // echo
        });
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        let msg = Message::Execute { frame: 99 };
        write_message(&mut stream, &msg).unwrap();
        let back = read_message(&mut stream).unwrap();
        assert_eq!(back, msg);
        handle.join().unwrap();
    }

    #[test]
    fn read_deadline_trips_on_silent_peer() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        let (_held, _) = listener.accept().unwrap(); // peer connects, never writes
        let start = std::time::Instant::now();
        let err =
            read_message_deadline(&mut stream, Duration::from_millis(50), "FrameDone")
                .unwrap_err();
        assert!(matches!(err, WallError::Timeout(_)), "{err}");
        assert!(err.to_string().contains("FrameDone"));
        assert!(start.elapsed() < Duration::from_secs(2));
        // deadline must be cleared afterwards: a normal exchange still works
        let msg = Message::Heartbeat { seq: 1 };
        let mut held = _held;
        write_message(&mut held, &msg).unwrap();
        assert_eq!(read_message(&mut stream).unwrap(), msg);
    }

    #[test]
    fn heartbeat_roundtrip_over_tcp() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let echo = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            match read_message(&mut s).unwrap() {
                Message::Heartbeat { seq } => {
                    write_message(&mut s, &Message::HeartbeatAck { client_id: 0, seq }).unwrap()
                }
                other => panic!("{other:?}"),
            }
        });
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        write_message_deadline(
            &mut stream,
            &Message::Heartbeat { seq: 42 },
            Duration::from_secs(1),
            "Heartbeat",
        )
        .unwrap();
        let ack = read_message_deadline(&mut stream, Duration::from_secs(1), "HeartbeatAck")
            .unwrap();
        assert_eq!(ack, Message::HeartbeatAck { client_id: 0, seq: 42 });
        echo.join().unwrap();
    }
}
