//! The deterministic session multiplexer: admission control, per-session
//! bounded inboxes, deficit-round-robin scheduling, and the
//! `Healthy → Overloaded → Shedding` state machine.
//!
//! The mux is pure data — no sockets, no threads, no wall clock. Time is
//! the logical **round**: the TCP front-end calls [`SessionMux::submit`]
//! as requests arrive and [`SessionMux::schedule_round`] whenever workers
//! have capacity; the property tests drive the same API with scripted
//! traffic and assert the invariants exactly:
//!
//! * a conforming session with queued work is served **every** round
//!   (no starvation);
//! * quota enforcement is exact to within the one in-flight request;
//! * shedding follows a strict, deterministic priority order
//!   (most-misbehaving first), and **every** shed request produces a
//!   [`ShedNotice`] → `RetryAfter` — nothing is dropped silently.

use super::quota::{QuotaConfig, TokenBucket, MILLI};
use crate::protocol::{RejectReason, ServiceWork};
use std::collections::{BTreeMap, VecDeque};

/// Tuning of the mux.
#[derive(Debug, Clone, Copy)]
pub struct MuxConfig {
    /// Maximum concurrently open sessions; more are rejected at open.
    pub max_sessions: usize,
    /// Per-session inbox bound; submits beyond it are rejected.
    pub inbox_capacity: usize,
    /// Per-session token bucket.
    pub quota: QuotaConfig,
    /// DRR quantum: requests a session may be served per round before its
    /// deficit carries over.
    pub quantum: u32,
    /// Total queued requests above which the service is Overloaded
    /// (results degrade, Busy advisories flow).
    pub overload_watermark: usize,
    /// Total queued requests above which the service starts Shedding
    /// (queued requests are evicted with RetryAfter).
    pub shed_watermark: usize,
    /// Rejections after which a session counts as misbehaving (demoted to
    /// the second scheduling tier, shed first).
    pub misbehave_threshold: u32,
    /// Milliseconds one logical round represents in retry hints.
    pub round_ms: u64,
}

impl Default for MuxConfig {
    fn default() -> MuxConfig {
        MuxConfig {
            max_sessions: 32,
            inbox_capacity: 16,
            quota: QuotaConfig::default(),
            quantum: 2,
            overload_watermark: 64,
            shed_watermark: 128,
            misbehave_threshold: 4,
            round_ms: 10,
        }
    }
}

/// Service-wide load state (the Degraded ladder, service edition).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServiceState {
    /// Under the overload watermark: full-quality results.
    Healthy,
    /// Over the overload watermark: requests still run, but at degraded
    /// quality (low-res mirror frames, coarsened analyses), and clients
    /// see `Busy` advisories.
    Overloaded,
    /// Over the shed watermark: queued requests are evicted (misbehaving
    /// sessions first), each with an explicit `RetryAfter`.
    Shedding,
}

/// Verdict of [`SessionMux::submit`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Admission {
    /// Queued; `queue_depth` is the session's inbox depth after the
    /// enqueue (propagated to the client as backpressure).
    Enqueued { queue_depth: usize, state: ServiceState },
    /// Turned away; retry after the hinted backoff.
    Rejected { reason: RejectReason, retry_after_ms: u64 },
}

/// One queued request.
#[derive(Debug, Clone)]
pub struct QueuedRequest {
    pub request: u64,
    pub work: ServiceWork,
}

/// A request the scheduler handed to a worker.
#[derive(Debug, Clone)]
pub struct ScheduledRequest {
    pub session: u64,
    pub request: u64,
    pub work: ServiceWork,
    /// True when the service is past the overload watermark: the worker
    /// must produce the cheaper degraded result.
    pub degraded: bool,
}

/// One shed request — the caller owes the client a `RetryAfter`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShedNotice {
    pub session: u64,
    pub request: u64,
    pub retry_after_ms: u64,
}

/// Point-in-time view of one session (for reports and tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionSnapshot {
    pub id: u64,
    pub queued: usize,
    pub served: u64,
    pub shed: u64,
    pub badness: u32,
    pub misbehaving: bool,
}

/// Cumulative mux counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MuxStats {
    pub admitted: u64,
    pub rejected_session_cap: u64,
    pub rejected_quota: u64,
    pub rejected_inbox: u64,
    pub scheduled: u64,
    pub shed: u64,
    pub rounds: u64,
}

#[derive(Debug)]
struct SessionEntry {
    bucket: TokenBucket,
    inbox: VecDeque<QueuedRequest>,
    deficit: u32,
    /// Rejections accumulated; over the threshold ⇒ misbehaving tier.
    badness: u32,
    served: u64,
    shed: u64,
}

/// The multiplexer. Deterministic: identical call sequences produce
/// identical admissions, schedules, and sheds.
#[derive(Debug)]
pub struct SessionMux {
    cfg: MuxConfig,
    // BTreeMap: iteration order (ascending id) is part of the determinism
    // contract for scheduling and shedding tie-breaks.
    sessions: BTreeMap<u64, SessionEntry>,
    stats: MuxStats,
}

impl SessionMux {
    /// An empty mux under `cfg` (watermarks are sanitized so
    /// `overload ≤ shed`).
    pub fn new(mut cfg: MuxConfig) -> SessionMux {
        cfg.quantum = cfg.quantum.max(1);
        cfg.inbox_capacity = cfg.inbox_capacity.max(1);
        cfg.shed_watermark = cfg.shed_watermark.max(cfg.overload_watermark);
        SessionMux { cfg, sessions: BTreeMap::new(), stats: MuxStats::default() }
    }

    /// The configuration in force.
    pub fn config(&self) -> &MuxConfig {
        &self.cfg
    }

    /// Cumulative counters.
    pub fn stats(&self) -> MuxStats {
        self.stats
    }

    /// Open sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Total queued requests across all inboxes.
    pub fn total_queued(&self) -> usize {
        self.sessions.values().map(|s| s.inbox.len()).sum()
    }

    /// The load state implied by the current queue depth.
    pub fn state(&self) -> ServiceState {
        let q = self.total_queued();
        if q > self.cfg.shed_watermark {
            ServiceState::Shedding
        } else if q > self.cfg.overload_watermark {
            ServiceState::Overloaded
        } else {
            ServiceState::Healthy
        }
    }

    /// A session's queue depth, when open.
    pub fn queue_depth(&self, session: u64) -> Option<usize> {
        self.sessions.get(&session).map(|s| s.inbox.len())
    }

    /// True when `session` has crossed the misbehaving threshold.
    pub fn is_misbehaving(&self, session: u64) -> bool {
        self.sessions
            .get(&session)
            .map(|s| s.badness >= self.cfg.misbehave_threshold)
            .unwrap_or(false)
    }

    /// Requests served to `session` so far.
    pub fn served(&self, session: u64) -> u64 {
        self.sessions.get(&session).map(|s| s.served).unwrap_or(0)
    }

    /// Requests shed from `session` so far.
    pub fn shed_count(&self, session: u64) -> u64 {
        self.sessions.get(&session).map(|s| s.shed).unwrap_or(0)
    }

    /// Per-session state, ascending id.
    pub fn snapshot(&self) -> Vec<SessionSnapshot> {
        self.sessions
            .iter()
            .map(|(&id, e)| SessionSnapshot {
                id,
                queued: e.inbox.len(),
                served: e.served,
                shed: e.shed,
                badness: e.badness,
                misbehaving: e.badness >= self.cfg.misbehave_threshold,
            })
            .collect()
    }

    /// Admits a new session, or rejects it at the session cap.
    pub fn open_session(&mut self, session: u64) -> Admission {
        if self.sessions.contains_key(&session) {
            // idempotent reopen (reconnect): keep the existing state so a
            // reconnect storm cannot launder badness or refill quota
            return Admission::Enqueued {
                queue_depth: self.sessions[&session].inbox.len(),
                state: self.state(),
            };
        }
        if self.sessions.len() >= self.cfg.max_sessions {
            self.stats.rejected_session_cap += 1;
            return Admission::Rejected {
                reason: RejectReason::SessionCapacity,
                retry_after_ms: self.cfg.round_ms.max(1) * 4,
            };
        }
        self.sessions.insert(
            session,
            SessionEntry {
                bucket: TokenBucket::new(self.cfg.quota),
                inbox: VecDeque::new(),
                deficit: 0,
                badness: 0,
                served: 0,
                shed: 0,
            },
        );
        Admission::Enqueued { queue_depth: 0, state: self.state() }
    }

    /// Closes `session`, returning any still-queued requests (the caller
    /// owes each a `RetryAfter` if the close was server-initiated).
    pub fn close_session(&mut self, session: u64) -> Vec<QueuedRequest> {
        match self.sessions.remove(&session) {
            Some(e) => e.inbox.into_iter().collect(),
            None => Vec::new(),
        }
    }

    /// Admission-controls one request.
    pub fn submit(&mut self, session: u64, request: u64, work: ServiceWork) -> Admission {
        let state = self.state();
        let round_ms = self.cfg.round_ms.max(1);
        let inbox_capacity = self.cfg.inbox_capacity;
        let Some(entry) = self.sessions.get_mut(&session) else {
            self.stats.rejected_session_cap += 1;
            return Admission::Rejected {
                reason: RejectReason::SessionCapacity,
                retry_after_ms: round_ms * 4,
            };
        };
        if entry.inbox.len() >= inbox_capacity {
            entry.badness = entry.badness.saturating_add(1);
            self.stats.rejected_inbox += 1;
            return Admission::Rejected {
                reason: RejectReason::InboxFull,
                retry_after_ms: round_ms * inbox_capacity as u64,
            };
        }
        if !entry.bucket.try_take() {
            entry.badness = entry.badness.saturating_add(1);
            let wait = entry.bucket.rounds_until_affordable();
            self.stats.rejected_quota += 1;
            return Admission::Rejected {
                reason: RejectReason::OverQuota,
                retry_after_ms: round_ms.saturating_mul(wait.min(1_000)),
            };
        }
        entry.inbox.push_back(QueuedRequest { request, work });
        let queue_depth = entry.inbox.len();
        self.stats.admitted += 1;
        Admission::Enqueued { queue_depth, state }
    }

    /// Runs one scheduling round: refills every bucket, tops up deficits,
    /// and picks up to `budget` requests — round-robin, one at a time,
    /// conforming sessions strictly before misbehaving ones. Returns the
    /// picks in dispatch order.
    pub fn schedule_round(&mut self, budget: usize) -> Vec<ScheduledRequest> {
        self.stats.rounds += 1;
        let degraded = self.state() != ServiceState::Healthy;
        let quantum = self.cfg.quantum;
        for e in self.sessions.values_mut() {
            e.bucket.refill();
            if e.inbox.is_empty() {
                // no carryover for idle sessions: deficits must not bank
                // into unbounded bursts
                e.deficit = quantum;
            } else {
                e.deficit = e.deficit.saturating_add(quantum);
            }
        }
        let threshold = self.cfg.misbehave_threshold;
        let tiers: [Vec<u64>; 2] = {
            let mut conforming = Vec::new();
            let mut misbehaving = Vec::new();
            for (&id, e) in &self.sessions {
                if e.badness >= threshold {
                    misbehaving.push(id);
                } else {
                    conforming.push(id);
                }
            }
            [conforming, misbehaving]
        };
        let mut out = Vec::new();
        for tier in &tiers {
            // one-at-a-time round-robin inside the tier: with budget ≥
            // |tier|, every session with queued work is served this round
            loop {
                if out.len() >= budget {
                    break;
                }
                let mut progressed = false;
                for &id in tier {
                    if out.len() >= budget {
                        break;
                    }
                    let Some(e) = self.sessions.get_mut(&id) else { continue };
                    if e.deficit == 0 || e.inbox.is_empty() {
                        continue;
                    }
                    if let Some(q) = e.inbox.pop_front() {
                        e.deficit -= 1;
                        e.served += 1;
                        progressed = true;
                        out.push(ScheduledRequest {
                            session: id,
                            request: q.request,
                            work: q.work,
                            degraded,
                        });
                    }
                }
                if !progressed {
                    break;
                }
            }
        }
        self.stats.scheduled += out.len() as u64;
        out
    }

    /// Enforces the shed watermark: evicts queued requests until total
    /// depth is back at the overload watermark. Victim order is strict
    /// and deterministic — most-misbehaving session first (ties: deepest
    /// queue, then highest id), newest request within a session first.
    /// Every evicted request is returned as a [`ShedNotice`].
    pub fn shed_to_watermark(&mut self) -> Vec<ShedNotice> {
        let mut notices = Vec::new();
        if self.state() != ServiceState::Shedding {
            return notices;
        }
        let target = self.cfg.overload_watermark;
        let retry_after_ms = self.cfg.round_ms.max(1) * 8;
        while self.total_queued() > target {
            let victim = self
                .sessions
                .iter()
                .filter(|(_, e)| !e.inbox.is_empty())
                .max_by_key(|(&id, e)| (e.badness, e.inbox.len(), id))
                .map(|(&id, _)| id);
            let Some(id) = victim else { break };
            if let Some(e) = self.sessions.get_mut(&id) {
                if let Some(q) = e.inbox.pop_back() {
                    e.shed += 1;
                    self.stats.shed += 1;
                    notices.push(ShedNotice {
                        session: id,
                        request: q.request,
                        retry_after_ms,
                    });
                }
            }
        }
        notices
    }

    /// Backoff hint for `Busy` advisories, scaled by queue depth.
    pub fn busy_retry_hint(&self, queue_depth: usize) -> u64 {
        self.cfg.round_ms.max(1) * (1 + queue_depth as u64 / 4)
    }
}

/// Convenience: millitokens constant re-exported for tuning math.
pub const QUOTA_MILLI: u64 = MILLI;

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> MuxConfig {
        MuxConfig {
            max_sessions: 4,
            inbox_capacity: 4,
            quota: QuotaConfig { burst: 8, refill_milli_per_round: 8 * MILLI },
            quantum: 1,
            overload_watermark: 6,
            shed_watermark: 10,
            misbehave_threshold: 2,
            round_ms: 10,
        }
    }

    fn work(seed: u64) -> ServiceWork {
        ServiceWork::Analysis { seed, len: 64 }
    }

    fn assert_enqueued(a: &Admission) {
        assert!(matches!(a, Admission::Enqueued { .. }), "expected Enqueued, got {a:?}");
    }

    #[test]
    fn session_cap_rejects_with_retry_hint() {
        let mut mux = SessionMux::new(small_cfg());
        for id in 0..4 {
            assert_enqueued(&mux.open_session(id));
        }
        match mux.open_session(99) {
            Admission::Rejected { reason, retry_after_ms } => {
                assert_eq!(reason, RejectReason::SessionCapacity);
                assert!(retry_after_ms > 0);
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(mux.stats().rejected_session_cap, 1);
    }

    #[test]
    fn reopen_is_idempotent_and_keeps_badness() {
        let mut mux = SessionMux::new(small_cfg());
        mux.open_session(1);
        // burn the whole burst + inbox to accumulate badness
        for r in 0..16 {
            mux.submit(1, r, work(r));
        }
        assert!(mux.is_misbehaving(1));
        mux.open_session(1); // reconnect
        assert!(mux.is_misbehaving(1), "reconnect must not launder badness");
    }

    #[test]
    fn inbox_bound_rejects_with_inbox_full() {
        let mut mux = SessionMux::new(small_cfg());
        mux.open_session(1);
        for r in 0..4 {
            assert_enqueued(&mux.submit(1, r, work(r)));
        }
        match mux.submit(1, 4, work(4)) {
            Admission::Rejected { reason, .. } => assert_eq!(reason, RejectReason::InboxFull),
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn quota_rejects_over_rate_with_usable_hint() {
        let cfg = MuxConfig {
            quota: QuotaConfig { burst: 2, refill_milli_per_round: MILLI / 2 },
            inbox_capacity: 16,
            ..small_cfg()
        };
        let mut mux = SessionMux::new(cfg);
        mux.open_session(1);
        assert_enqueued(&mux.submit(1, 0, work(0)));
        assert_enqueued(&mux.submit(1, 1, work(1)));
        match mux.submit(1, 2, work(2)) {
            Admission::Rejected { reason, retry_after_ms } => {
                assert_eq!(reason, RejectReason::OverQuota);
                // 1 token at 0.5/round = 2 rounds × 10ms
                assert_eq!(retry_after_ms, 20);
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn conforming_sessions_all_served_each_round() {
        let mut mux = SessionMux::new(small_cfg());
        for id in 0..3 {
            mux.open_session(id);
            mux.submit(id, 100 + id, work(id));
        }
        let picks = mux.schedule_round(10);
        let served: Vec<u64> = picks.iter().map(|p| p.session).collect();
        assert_eq!(served, vec![0, 1, 2], "deterministic id-order round robin");
    }

    #[test]
    fn misbehaving_sessions_only_get_leftover_budget() {
        let mut mux = SessionMux::new(small_cfg());
        mux.open_session(1);
        mux.open_session(2);
        // session 2 misbehaves (inbox overflow twice)
        for r in 0..8 {
            mux.submit(2, r, work(r));
        }
        assert!(mux.is_misbehaving(2));
        mux.submit(1, 100, work(100));
        let picks = mux.schedule_round(1);
        assert_eq!(picks.len(), 1);
        assert_eq!(picks[0].session, 1, "conforming session wins the only slot");
    }

    #[test]
    fn overload_degrades_and_shed_emits_retry_for_every_victim() {
        let cfg = MuxConfig {
            inbox_capacity: 16,
            quota: QuotaConfig { burst: 32, refill_milli_per_round: 32 * MILLI },
            ..small_cfg()
        };
        let mut mux = SessionMux::new(cfg);
        mux.open_session(1);
        mux.open_session(2);
        // flood session 2 far past the shed watermark (10)
        for r in 0..14 {
            mux.submit(2, r, work(r));
        }
        mux.submit(1, 100, work(100));
        assert_eq!(mux.state(), ServiceState::Shedding);
        // while past the overload watermark, scheduled work is degraded
        let picks = mux.schedule_round(2);
        assert!(!picks.is_empty());
        assert!(picks.iter().all(|p| p.degraded), "overloaded rounds degrade results");
        let before = mux.total_queued();
        let notices = mux.shed_to_watermark();
        let after = mux.total_queued();
        assert_eq!(after, 6, "shed back to the overload watermark");
        assert_eq!(notices.len(), before - after, "one notice per evicted request");
        assert!(
            notices.iter().all(|n| n.session == 2),
            "the flooding session is shed first; the conforming one is untouched"
        );
    }

    #[test]
    fn identical_traffic_identical_decisions() {
        let run = || {
            let mut mux = SessionMux::new(small_cfg());
            let mut trace = Vec::new();
            for id in 0..3 {
                mux.open_session(id);
            }
            for r in 0..20 {
                for id in 0..3 {
                    let a = mux.submit(id, r * 10 + id, work(r));
                    trace.push(format!("{id}:{a:?}"));
                }
                for p in mux.schedule_round(2) {
                    trace.push(format!("sched {}:{}", p.session, p.request));
                }
                for n in mux.shed_to_watermark() {
                    trace.push(format!("shed {}:{}", n.session, n.request));
                }
            }
            trace
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn close_returns_queued_requests() {
        let mut mux = SessionMux::new(small_cfg());
        mux.open_session(1);
        mux.submit(1, 7, work(7));
        mux.submit(1, 8, work(8));
        let orphans = mux.close_session(1);
        assert_eq!(orphans.len(), 2);
        assert_eq!(mux.session_count(), 0);
    }
}
