//! The TCP front-end of the multi-tenant session service.
//!
//! Thread layout (all joined on shutdown):
//!
//! * **accept thread** — owns the listener; spawns one connection thread
//!   per client.
//! * **connection threads** — speak the length-prefixed protocol under
//!   the same total-frame deadlines as the wall (a slow-loris peer trips
//!   [`crate::WallError::Timeout`] instead of wedging the thread),
//!   translate `Request` frames into [`SessionMux::submit`] verdicts, and
//!   drain their session's outbox of `Response` / `Busy` / `RetryAfter`
//!   frames.
//! * **scheduler thread** — ticks the logical round clock: one
//!   [`SessionMux::schedule_round`] per tick feeds the worker queue, one
//!   [`SessionMux::shed_to_watermark`] turns overload into explicit
//!   `RetryAfter` frames (never silent drops).
//! * **worker threads** — execute [`crate::protocol::ServiceWork`] via
//!   [`super::worker::perform`] against the process-wide shared caches,
//!   at degraded quality when the round was scheduled under overload.

use super::mux::{Admission, MuxConfig, MuxStats, ScheduledRequest, ServiceState, SessionMux};
use super::worker::perform;
use crate::protocol::{
    read_message_idle_bounded, write_message_deadline, Message, RejectReason, ResultQuality,
};
use crate::{Result, WallError};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning of the whole service.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// The mux (admission / scheduling / shedding) tuning.
    pub mux: MuxConfig,
    /// Worker threads executing requests.
    pub workers: usize,
    /// Total-frame I/O deadline for every protocol exchange, ms.
    pub io_deadline_ms: u64,
    /// Scheduler tick, ms (the wall-clock length of one logical round).
    pub round_interval_ms: u64,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            mux: MuxConfig::default(),
            workers: 2,
            io_deadline_ms: 250,
            round_interval_ms: 2,
        }
    }
}

/// Cumulative service counters (beyond [`MuxStats`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceCounters {
    /// `Response` frames delivered.
    pub responses: u64,
    /// Degraded-quality responses among them.
    pub degraded_responses: u64,
    /// `Busy` advisories sent.
    pub busies: u64,
    /// `RetryAfter` frames sent (rejections + sheds).
    pub retry_afters: u64,
    /// Sessions accepted.
    pub sessions_opened: u64,
    /// Connections dropped for protocol deadline violations (slow-loris,
    /// mid-frame stalls).
    pub deadline_drops: u64,
    /// Connections that ended with an I/O error or EOF.
    pub disconnects: u64,
    /// Messages that could not be delivered because the session's
    /// connection was gone (each is still accounted here, not lost
    /// silently).
    pub undeliverable: u64,
}

/// Final report of a service run.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    pub mux: MuxStats,
    pub counters: ServiceCounters,
    /// Shared regrid-plan cache counters at shutdown.
    pub plan_cache: cdat::plan_cache::CacheStats,
}

#[derive(Debug, Default)]
struct Counters {
    responses: AtomicU64,
    degraded_responses: AtomicU64,
    busies: AtomicU64,
    retry_afters: AtomicU64,
    sessions_opened: AtomicU64,
    deadline_drops: AtomicU64,
    disconnects: AtomicU64,
    undeliverable: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> ServiceCounters {
        ServiceCounters {
            responses: self.responses.load(Ordering::Relaxed),
            degraded_responses: self.degraded_responses.load(Ordering::Relaxed),
            busies: self.busies.load(Ordering::Relaxed),
            retry_afters: self.retry_afters.load(Ordering::Relaxed),
            sessions_opened: self.sessions_opened.load(Ordering::Relaxed),
            deadline_drops: self.deadline_drops.load(Ordering::Relaxed),
            disconnects: self.disconnects.load(Ordering::Relaxed),
            undeliverable: self.undeliverable.load(Ordering::Relaxed),
        }
    }
}

#[derive(Debug)]
struct Shared {
    cfg: ServiceConfig,
    mux: Mutex<SessionMux>,
    /// Per-session outboxes: connection threads drain these onto the wire.
    /// The epoch tag identifies which connection registered the sender, so
    /// a finished connection never evicts its reconnect's replacement.
    outboxes: Mutex<HashMap<u64, (u64, mpsc::Sender<Message>)>>,
    conn_epoch: AtomicU64,
    stop: AtomicBool,
    counters: Counters,
}

impl Shared {
    /// Queues `msg` for the session's connection; counts it as
    /// undeliverable when no connection is registered.
    fn post(&self, session: u64, msg: Message) {
        let delivered = {
            let outboxes = self.outboxes.lock();
            match outboxes.get(&session) {
                Some((_, tx)) => tx.send(msg).is_ok(),
                None => false,
            }
        };
        if !delivered {
            self.counters.undeliverable.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A running service; [`ServiceHandle::shutdown`] stops and joins it.
#[derive(Debug)]
pub struct ServiceHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: JoinHandle<()>,
    scheduler: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl ServiceHandle {
    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live snapshot of the counters.
    pub fn counters(&self) -> ServiceCounters {
        self.shared.counters.snapshot()
    }

    /// Live snapshot of the mux stats.
    pub fn mux_stats(&self) -> MuxStats {
        self.shared.mux.lock().stats()
    }

    /// Live per-session snapshot.
    pub fn sessions(&self) -> Vec<super::mux::SessionSnapshot> {
        self.shared.mux.lock().snapshot()
    }

    /// Stops every thread and returns the final report.
    pub fn shutdown(self) -> ServiceReport {
        self.shared.stop.store(true, Ordering::SeqCst);
        // nudge the accept loop (it polls with a timeout, but a connect
        // unblocks it immediately)
        let _ = TcpStream::connect(self.addr);
        let _ = self.accept.join();
        let _ = self.scheduler.join();
        for w in self.workers {
            let _ = w.join();
        }
        ServiceReport {
            mux: self.shared.mux.lock().stats(),
            counters: self.shared.counters.snapshot(),
            plan_cache: cdat::plan_cache::global_stats(),
        }
    }
}

/// Starts the service on an OS-assigned loopback port.
pub fn spawn_service(cfg: ServiceConfig) -> Result<ServiceHandle> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        cfg,
        mux: Mutex::new(SessionMux::new(cfg.mux)),
        outboxes: Mutex::new(HashMap::new()),
        conn_epoch: AtomicU64::new(0),
        stop: AtomicBool::new(false),
        counters: Counters::default(),
    });

    let (work_tx, work_rx) = mpsc::channel::<ScheduledRequest>();
    let work_rx = Arc::new(Mutex::new(work_rx));

    let workers: Vec<JoinHandle<()>> = (0..cfg.workers.max(1))
        .map(|_| {
            let shared = Arc::clone(&shared);
            let work_rx = Arc::clone(&work_rx);
            std::thread::spawn(move || worker_loop(&shared, &work_rx))
        })
        .collect();

    let scheduler = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || scheduler_loop(&shared, &work_tx))
    };

    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || accept_loop(&shared, &listener))
    };

    Ok(ServiceHandle { addr, shared, accept, scheduler, workers })
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                let shared = Arc::clone(shared);
                conns.push(std::thread::spawn(move || {
                    connection_loop(&shared, stream);
                }));
            }
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
            }
        }
        // opportunistically reap finished connection threads
        conns.retain(|h| !h.is_finished());
    }
    for h in conns {
        let _ = h.join();
    }
}

fn scheduler_loop(shared: &Arc<Shared>, work_tx: &mpsc::Sender<ScheduledRequest>) {
    let tick = Duration::from_millis(shared.cfg.round_interval_ms.max(1));
    // schedule enough each round to keep every worker busy without letting
    // an unbounded backlog build between mux and workers
    let budget = shared.cfg.workers.max(1) * 2;
    while !shared.stop.load(Ordering::SeqCst) {
        let (picks, notices) = {
            let mut mux = shared.mux.lock();
            let picks = mux.schedule_round(budget);
            let notices = mux.shed_to_watermark();
            (picks, notices)
        };
        for n in notices {
            shared.counters.retry_afters.fetch_add(1, Ordering::Relaxed);
            shared.post(
                n.session,
                Message::RetryAfter {
                    session_id: n.session,
                    request: n.request,
                    retry_after_ms: n.retry_after_ms,
                    reason: RejectReason::Shed,
                },
            );
        }
        for p in picks {
            if work_tx.send(p).is_err() {
                return;
            }
        }
        std::thread::sleep(tick);
    }
}

fn worker_loop(shared: &Arc<Shared>, work_rx: &Arc<Mutex<mpsc::Receiver<ScheduledRequest>>>) {
    loop {
        // Poll under the lock, never block under it: holding the receiver
        // guard across a timed recv would serialize the whole worker pool
        // behind one sleeping thread (and is exactly what the
        // guard_across_blocking lint rejects). Empty queue → sleep with the
        // guard dropped.
        let next = {
            let rx = work_rx.lock();
            rx.try_recv()
        };
        match next {
            Ok(p) => {
                let quality =
                    if p.degraded { ResultQuality::Degraded } else { ResultQuality::Full };
                match perform(&p.work, quality) {
                    Ok(outcome) => {
                        shared.counters.responses.fetch_add(1, Ordering::Relaxed);
                        if p.degraded {
                            shared.counters.degraded_responses.fetch_add(1, Ordering::Relaxed);
                        }
                        shared.post(
                            p.session,
                            Message::Response {
                                session_id: p.session,
                                request: p.request,
                                quality,
                                digest: outcome.digest,
                                compute_ms: outcome.compute_ms,
                            },
                        );
                    }
                    Err(_) => {
                        // a failed execution is still answered, never dropped
                        shared.counters.retry_afters.fetch_add(1, Ordering::Relaxed);
                        shared.post(
                            p.session,
                            Message::RetryAfter {
                                session_id: p.session,
                                request: p.request,
                                retry_after_ms: shared.cfg.mux.round_ms.max(1) * 4,
                                reason: RejectReason::Shed,
                            },
                        );
                    }
                }
            }
            Err(mpsc::TryRecvError::Empty) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(mpsc::TryRecvError::Disconnected) => return,
        }
    }
}

fn connection_loop(shared: &Arc<Shared>, mut stream: TcpStream) {
    stream.set_nodelay(true).ok();
    let io_deadline = Duration::from_millis(shared.cfg.io_deadline_ms.max(1));
    let slice = Duration::from_millis(1);
    let max_idle = Duration::from_millis(2);

    // handshake: the first frame must be SessionOpen, under the same
    // total-frame deadline as everything else (a slow-loris opener is
    // dropped right here)
    let session = match read_message_idle_bounded(
        &mut stream,
        slice,
        io_deadline,
        Duration::from_millis(shared.cfg.io_deadline_ms.max(1) * 4),
        "SessionOpen",
    ) {
        Ok(Some(Message::SessionOpen { session_id })) => session_id,
        Ok(Some(_)) | Ok(None) => {
            shared.counters.disconnects.fetch_add(1, Ordering::Relaxed);
            return;
        }
        Err(WallError::Timeout(_)) => {
            shared.counters.deadline_drops.fetch_add(1, Ordering::Relaxed);
            return;
        }
        Err(_) => {
            shared.counters.disconnects.fetch_add(1, Ordering::Relaxed);
            return;
        }
    };

    let verdict = shared.mux.lock().open_session(session);
    match verdict {
        Admission::Enqueued { .. } => {
            shared.counters.sessions_opened.fetch_add(1, Ordering::Relaxed);
            let _ = write_message_deadline(
                &mut stream,
                &Message::SessionAccepted { session_id: session },
                io_deadline,
                "SessionAccepted",
            );
        }
        Admission::Rejected { reason, retry_after_ms } => {
            shared.counters.retry_afters.fetch_add(1, Ordering::Relaxed);
            let _ = write_message_deadline(
                &mut stream,
                &Message::RetryAfter { session_id: session, request: 0, retry_after_ms, reason },
                io_deadline,
                "RetryAfter",
            );
            return;
        }
    }

    // register (or replace, on reconnect) the session outbox
    let epoch = shared.conn_epoch.fetch_add(1, Ordering::SeqCst);
    let (tx, rx) = mpsc::channel::<Message>();
    shared.outboxes.lock().insert(session, (epoch, tx));

    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        // drain pending outbound frames first: responses must not wait
        // behind an idle read
        let mut write_failed = false;
        while let Ok(msg) = rx.try_recv() {
            if write_message_deadline(&mut stream, &msg, io_deadline, "service reply").is_err() {
                write_failed = true;
                break;
            }
        }
        if write_failed {
            shared.counters.disconnects.fetch_add(1, Ordering::Relaxed);
            break;
        }
        match read_message_idle_bounded(&mut stream, slice, io_deadline, max_idle, "service frame")
        {
            Ok(None) => continue,
            Ok(Some(Message::Request { session_id, request, work })) => {
                if session_id != session {
                    continue;
                }
                let verdict = shared.mux.lock().submit(session, request, work);
                match verdict {
                    Admission::Enqueued { queue_depth, state } => {
                        if state != ServiceState::Healthy {
                            let hint = shared.mux.lock().busy_retry_hint(queue_depth);
                            shared.counters.busies.fetch_add(1, Ordering::Relaxed);
                            shared.post(
                                session,
                                Message::Busy {
                                    session_id: session,
                                    queue_depth,
                                    retry_after_ms: hint,
                                },
                            );
                        }
                    }
                    Admission::Rejected { reason, retry_after_ms } => {
                        shared.counters.retry_afters.fetch_add(1, Ordering::Relaxed);
                        shared.post(
                            session,
                            Message::RetryAfter {
                                session_id: session,
                                request,
                                retry_after_ms,
                                reason,
                            },
                        );
                    }
                }
            }
            Ok(Some(Message::SessionClose { session_id })) if session_id == session => {
                shared.mux.lock().close_session(session);
                break;
            }
            Ok(Some(Message::Heartbeat { seq })) => {
                let _ = write_message_deadline(
                    &mut stream,
                    &Message::HeartbeatAck { client_id: session as usize, seq },
                    io_deadline,
                    "HeartbeatAck",
                );
            }
            Ok(Some(_)) => continue,
            Err(WallError::Timeout(_)) => {
                // slow-loris / stalled frame: drop the connection, keep the
                // session (its quota and badness survive a reconnect)
                shared.counters.deadline_drops.fetch_add(1, Ordering::Relaxed);
                break;
            }
            Err(_) => {
                shared.counters.disconnects.fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
    }
    // drop this connection's outbox only if it is still ours (a reconnect
    // may already have replaced it with a newer epoch)
    let mut outboxes = shared.outboxes.lock();
    if outboxes.get(&session).is_some_and(|(e, _)| *e == epoch) {
        outboxes.remove(&session);
    }
    drop(outboxes);
    drop(rx);
}
