//! # Multi-tenant session service
//!
//! The wall (one server, fifteen display clients it controls) assumes a
//! single tenant. This module turns the same TCP protocol into a shared
//! analysis service: many concurrent client **sessions**, each with an
//! id, a token-bucket quota, and a bounded inbox, multiplexed onto a
//! fixed worker pool over the process-wide shared caches
//! ([`cdat::plan_cache`] and [`vistrails::shared_cache`]).
//!
//! The load-management ladder reuses the wall's Degraded philosophy —
//! *answer worse before answering nothing, and never answer nothing
//! silently*:
//!
//! 1. **Healthy** — full-quality results.
//! 2. **Overloaded** (queue past the overload watermark) — every request
//!    still runs, but coarsened: quarter-resolution mirror frames,
//!    strided analyses, smaller regrid plans. Clients get `Busy`
//!    advisories carrying the queue depth (backpressure in wire form).
//! 3. **Shedding** (queue past the shed watermark) — queued requests are
//!    evicted in a strict deterministic priority order (most-misbehaving
//!    session first), and **every** evicted request is answered with
//!    `RetryAfter`. Zero silent drops.
//!
//! Fairness is deficit round-robin over two tiers: sessions that keep
//! their quota (conforming) are served strictly before sessions that
//! keep getting rejected (misbehaving), so one open-loop flooder cannot
//! starve everyone else. The scheduler itself is pure, deterministic
//! data ([`mux::SessionMux`]) driven by a logical round clock — the
//! property tests replay scripted traffic and assert never-starves /
//! quota-exact / shed-order invariants without touching a socket.
//!
//! Module map:
//!
//! * [`quota`] — fixed-point token buckets on the round clock.
//! * [`mux`] — admission, DRR scheduling, overload state machine.
//! * [`worker`] — executes [`crate::protocol::ServiceWork`] against the
//!   shared caches, full or degraded.
//! * [`server`] — the TCP front-end (accept/connection/scheduler/worker
//!   threads, all I/O under total-frame deadlines).
//! * [`client`] — the tenant side, plus scripted misbehavior
//!   (slow-loris, mid-request disconnect, reconnect storm, quota storm)
//!   driven by [`crate::fault::FaultPlan`].

pub mod client;
pub mod mux;
pub mod quota;
pub mod server;
pub mod worker;

pub use client::{ClientRunStats, ServiceClient};
pub use mux::{Admission, MuxConfig, MuxStats, ServiceState, SessionMux, SessionSnapshot};
pub use quota::{QuotaConfig, TokenBucket};
pub use server::{spawn_service, ServiceConfig, ServiceHandle, ServiceReport};
