//! Per-session token-bucket quotas in fixed-point integer arithmetic.
//!
//! The bucket runs on the mux's *logical round clock*, not wall time, so
//! every admission decision is a pure function of the request sequence —
//! the property tests replay identical traffic and demand identical
//! verdicts. Token amounts are millitokens (1 request = 1000 mt), which
//! lets fractional refill rates ("2.5 requests per round") stay exact in
//! integer math.

/// Millitokens per request.
pub const MILLI: u64 = 1000;

/// Configuration of one session's token bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuotaConfig {
    /// Burst size, in requests (bucket capacity).
    pub burst: u32,
    /// Steady-state rate, in millirequests per logical round
    /// (e.g. `2500` = 2.5 requests/round).
    pub refill_milli_per_round: u64,
}

impl Default for QuotaConfig {
    fn default() -> QuotaConfig {
        QuotaConfig { burst: 8, refill_milli_per_round: 2 * MILLI }
    }
}

/// A deterministic token bucket.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    capacity_milli: u64,
    refill_milli: u64,
    level_milli: u64,
}

impl TokenBucket {
    /// A full bucket under `cfg`.
    pub fn new(cfg: QuotaConfig) -> TokenBucket {
        let capacity_milli = u64::from(cfg.burst.max(1)) * MILLI;
        TokenBucket {
            capacity_milli,
            refill_milli: cfg.refill_milli_per_round,
            level_milli: capacity_milli,
        }
    }

    /// Adds one round's worth of tokens, saturating at capacity.
    pub fn refill(&mut self) {
        self.level_milli = (self.level_milli + self.refill_milli).min(self.capacity_milli);
    }

    /// Spends one request's tokens; `false` (and no change) when the
    /// bucket cannot cover it.
    pub fn try_take(&mut self) -> bool {
        if self.level_milli >= MILLI {
            self.level_milli -= MILLI;
            true
        } else {
            false
        }
    }

    /// Current level in millitokens.
    pub fn level_milli(&self) -> u64 {
        self.level_milli
    }

    /// Whole requests currently affordable.
    pub fn available(&self) -> u64 {
        self.level_milli / MILLI
    }

    /// Logical rounds until one request is affordable (0 when affordable
    /// now; `u64::MAX` when the refill rate is zero).
    pub fn rounds_until_affordable(&self) -> u64 {
        if self.level_milli >= MILLI {
            return 0;
        }
        if self.refill_milli == 0 {
            return u64::MAX;
        }
        let deficit = MILLI - self.level_milli;
        deficit.div_ceil(self.refill_milli)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_steady_state() {
        let mut b = TokenBucket::new(QuotaConfig { burst: 3, refill_milli_per_round: MILLI });
        // full burst up front
        assert!(b.try_take());
        assert!(b.try_take());
        assert!(b.try_take());
        assert!(!b.try_take(), "burst exhausted");
        // one round refills exactly one request
        b.refill();
        assert!(b.try_take());
        assert!(!b.try_take());
    }

    #[test]
    fn fractional_rate_is_exact() {
        // 0.5 requests/round: affordable every other round, forever
        let mut b = TokenBucket::new(QuotaConfig { burst: 1, refill_milli_per_round: MILLI / 2 });
        assert!(b.try_take());
        let mut granted = 0;
        for _ in 0..20 {
            b.refill();
            if b.try_take() {
                granted += 1;
            }
        }
        assert_eq!(granted, 10, "exactly half the rounds grant a token");
    }

    #[test]
    fn refill_saturates_at_capacity() {
        let mut b = TokenBucket::new(QuotaConfig { burst: 2, refill_milli_per_round: 10 * MILLI });
        b.refill();
        b.refill();
        assert_eq!(b.available(), 2);
    }

    #[test]
    fn rounds_until_affordable_is_a_usable_retry_hint() {
        let mut b = TokenBucket::new(QuotaConfig { burst: 1, refill_milli_per_round: MILLI / 4 });
        assert!(b.try_take());
        assert_eq!(b.rounds_until_affordable(), 4);
        b.refill();
        assert_eq!(b.rounds_until_affordable(), 3);
        let frozen = TokenBucket::new(QuotaConfig { burst: 1, refill_milli_per_round: 0 });
        assert_eq!(frozen.rounds_until_affordable(), 0, "still has its burst");
    }
}
