//! The session client — the tenant side of the service protocol — plus
//! deterministic misbehavior helpers driven by [`crate::fault::FaultPlan`]
//! (slow-loris, mid-request disconnects, reconnect storms, quota storms)
//! so overload tests script abuse exactly.

use crate::fault::ClientFaults;
use crate::protocol::{
    encode_frame, read_message_deadline, read_message_idle_bounded, write_message_deadline,
    Message, ServiceWork,
};
use crate::{Result, WallError};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// What one closed-loop client run observed.
#[derive(Debug, Clone, Default)]
pub struct ClientRunStats {
    /// Request→response latencies, ms, in completion order.
    pub latencies_ms: Vec<f64>,
    /// Full-quality responses.
    pub full_responses: u64,
    /// Degraded-quality responses.
    pub degraded_responses: u64,
    /// `RetryAfter` frames received (rejections and sheds).
    pub retry_afters: u64,
    /// `Busy` advisories received.
    pub busies: u64,
    /// Requests that timed out waiting for any reply.
    pub timeouts: u64,
}

impl ClientRunStats {
    /// The p-th latency percentile (p in [0, 100]); `None` when empty.
    pub fn percentile_ms(&self, p: f64) -> Option<f64> {
        if self.latencies_ms.is_empty() {
            return None;
        }
        let mut sorted = self.latencies_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted.get(idx.min(sorted.len() - 1)).copied()
    }

    /// Every request was answered (response, retry-after, or counted
    /// timeout) — the client-side view of "no silent drops".
    pub fn answered(&self) -> u64 {
        self.full_responses + self.degraded_responses + self.retry_afters
    }
}

/// A connected, accepted session.
#[derive(Debug)]
pub struct ServiceClient {
    stream: TcpStream,
    session_id: u64,
    io_deadline: Duration,
}

impl ServiceClient {
    /// Connects and opens `session_id`. An admission rejection surfaces as
    /// [`WallError::Overloaded`].
    pub fn connect(addr: SocketAddr, session_id: u64, io_deadline: Duration) -> Result<ServiceClient> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        write_message_deadline(
            &mut stream,
            &Message::SessionOpen { session_id },
            io_deadline,
            "SessionOpen",
        )?;
        match read_message_deadline(&mut stream, io_deadline, "SessionAccepted")? {
            Message::SessionAccepted { .. } => {
                Ok(ServiceClient { stream, session_id, io_deadline })
            }
            Message::RetryAfter { retry_after_ms, .. } => {
                Err(WallError::Overloaded { retry_after_ms })
            }
            other => Err(WallError::Protocol(format!("unexpected handshake reply: {other:?}"))),
        }
    }

    /// The session id.
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// Sends one request (fire-and-forget; replies arrive via [`Self::poll`]).
    pub fn send_request(&mut self, request: u64, work: ServiceWork) -> Result<()> {
        write_message_deadline(
            &mut self.stream,
            &Message::Request { session_id: self.session_id, request, work },
            self.io_deadline,
            "Request",
        )
    }

    /// Waits up to `max_idle` for the next frame; `Ok(None)` when the
    /// service stayed silent.
    pub fn poll(&mut self, max_idle: Duration) -> Result<Option<Message>> {
        read_message_idle_bounded(
            &mut self.stream,
            Duration::from_millis(1),
            self.io_deadline,
            max_idle,
            "service reply",
        )
    }

    /// Closes the session politely.
    pub fn close(mut self) -> Result<()> {
        write_message_deadline(
            &mut self.stream,
            &Message::SessionClose { session_id: self.session_id },
            self.io_deadline,
            "SessionClose",
        )
    }

    /// Runs a closed loop: submit one request, wait for its outcome
    /// (`Response` or `RetryAfter`), pacing by `gap` between submissions.
    /// A `RetryAfter` is honored by sleeping the hinted backoff (capped at
    /// 50 ms to bound test time) without resubmitting — the rejection
    /// itself is the recorded outcome.
    pub fn run_closed_loop(
        &mut self,
        works: &[ServiceWork],
        reply_timeout: Duration,
        gap: Duration,
    ) -> ClientRunStats {
        let mut stats = ClientRunStats::default();
        for (i, work) in works.iter().enumerate() {
            let request = i as u64;
            let sent = Instant::now();
            if self.send_request(request, work.clone()).is_err() {
                stats.timeouts += 1;
                break;
            }
            let mut settled = false;
            while sent.elapsed() < reply_timeout {
                match self.poll(Duration::from_millis(5)) {
                    Ok(Some(Message::Response { request: r, quality, .. })) if r == request => {
                        stats.latencies_ms.push(sent.elapsed().as_secs_f64() * 1e3);
                        match quality {
                            crate::protocol::ResultQuality::Degraded => {
                                stats.degraded_responses += 1
                            }
                            _ => stats.full_responses += 1,
                        }
                        settled = true;
                        break;
                    }
                    Ok(Some(Message::RetryAfter { request: r, retry_after_ms, .. }))
                        if r == request =>
                    {
                        stats.retry_afters += 1;
                        std::thread::sleep(Duration::from_millis(retry_after_ms.min(50)));
                        settled = true;
                        break;
                    }
                    Ok(Some(Message::Busy { retry_after_ms, .. })) => {
                        stats.busies += 1;
                        std::thread::sleep(Duration::from_millis(retry_after_ms.min(20)));
                    }
                    // stale frames for earlier requests (e.g. late sheds)
                    Ok(Some(_)) => {}
                    Ok(None) => {}
                    Err(_) => {
                        stats.timeouts += 1;
                        return stats;
                    }
                }
            }
            if !settled {
                stats.timeouts += 1;
            }
            if !gap.is_zero() {
                std::thread::sleep(gap);
            }
        }
        stats
    }

    /// Floods `n` requests without waiting for any reply (the misbehaving
    /// open-loop client). Returns how many submissions hit the wire.
    pub fn flood(&mut self, n: u64, work: &ServiceWork) -> u64 {
        for i in 0..n {
            if self.send_request(i, work.clone()).is_err() {
                return i;
            }
        }
        n
    }

    /// Drains replies for up to `window`, counting them. Used after a
    /// flood to verify that every admitted-or-rejected request was
    /// explicitly answered.
    pub fn drain_replies(&mut self, window: Duration) -> ClientRunStats {
        let mut stats = ClientRunStats::default();
        let end = Instant::now() + window;
        while Instant::now() < end {
            match self.poll(Duration::from_millis(5)) {
                Ok(Some(Message::Response { quality, .. })) => match quality {
                    crate::protocol::ResultQuality::Degraded => stats.degraded_responses += 1,
                    _ => stats.full_responses += 1,
                },
                Ok(Some(Message::RetryAfter { .. })) => stats.retry_afters += 1,
                Ok(Some(Message::Busy { .. })) => stats.busies += 1,
                Ok(Some(_)) | Ok(None) => {}
                Err(_) => break,
            }
        }
        stats
    }
}

/// Opens a connection that dribbles its `SessionOpen` one byte every
/// `faults.slow_loris_ms()` milliseconds — the slow-loris attacker. The
/// service must cut it off by frame deadline; returns the bytes that made
/// it out before the peer (rightly) hung up.
pub fn slow_loris_open(addr: SocketAddr, session_id: u64, ms_per_byte: u64) -> Result<usize> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let framed = encode_frame(&Message::SessionOpen { session_id })?;
    for (i, b) in framed.iter().enumerate() {
        if stream.write_all(std::slice::from_ref(b)).is_err() {
            return Ok(i);
        }
        stream.flush().ok();
        std::thread::sleep(Duration::from_millis(ms_per_byte));
    }
    Ok(framed.len())
}

/// Connects, opens a session, then cuts the connection halfway through a
/// `Request` frame (the mid-request disconnect fault). The service must
/// survive and keep the session accountable.
pub fn disconnect_mid_request(
    addr: SocketAddr,
    session_id: u64,
    io_deadline: Duration,
) -> Result<()> {
    let mut client = ServiceClient::connect(addr, session_id, io_deadline)?;
    let framed = encode_frame(&Message::Request {
        session_id,
        request: 0,
        work: ServiceWork::Analysis { seed: 1, len: 64 },
    })?;
    client.stream.write_all(&framed[..framed.len() / 2])?;
    client.stream.flush().ok();
    client.stream.shutdown(std::net::Shutdown::Both).ok();
    Ok(())
}

/// Hammers the service with `attempts` immediate reconnects of the same
/// session id (the thundering-herd fault). Returns how many handshakes
/// were accepted; the mux's idempotent reopen means quota and badness
/// survive every one of them.
pub fn reconnect_storm(
    addr: SocketAddr,
    session_id: u64,
    attempts: u32,
    io_deadline: Duration,
) -> u32 {
    let mut accepted = 0;
    for _ in 0..attempts {
        if let Ok(c) = ServiceClient::connect(addr, session_id, io_deadline) {
            accepted += 1;
            drop(c); // drop without SessionClose: the rude disconnect
        }
    }
    accepted
}

/// Scripts a misbehaving client from its [`ClientFaults`] (query
/// `plan.client(session_id as usize)`): a quota storm when scripted,
/// otherwise slow-loris / mid-request disconnect / reconnect storm /
/// plain closed loop. Returns the run stats (for storm clients, the
/// flood + drained replies).
pub fn run_faulted_client(
    addr: SocketAddr,
    session_id: u64,
    faults: &ClientFaults,
    works: &[ServiceWork],
    io_deadline: Duration,
) -> Result<ClientRunStats> {
    let storm = faults.quota_storm();
    if storm > 0 {
        let mut client = ServiceClient::connect(addr, session_id, io_deadline)?;
        let work = works
            .first()
            .cloned()
            .unwrap_or(ServiceWork::Analysis { seed: session_id, len: 64 });
        client.flood(u64::from(storm), &work);
        let stats = client.drain_replies(Duration::from_millis(300));
        client.close().ok();
        return Ok(stats);
    }
    let loris = faults.slow_loris_ms();
    if loris > 0 {
        slow_loris_open(addr, session_id, loris)?;
        return Ok(ClientRunStats::default());
    }
    if faults.mid_request_disconnect_at().is_some() {
        disconnect_mid_request(addr, session_id, io_deadline)?;
        return Ok(ClientRunStats::default());
    }
    let herd = faults.reconnect_storm();
    if herd > 0 {
        reconnect_storm(addr, session_id, herd, io_deadline);
        return Ok(ClientRunStats::default());
    }
    let mut client = ServiceClient::connect(addr, session_id, io_deadline)?;
    let stats = client.run_closed_loop(works, Duration::from_secs(2), Duration::ZERO);
    client.close().ok();
    Ok(stats)
}
