//! Service workers: execute one [`ServiceWork`] item, at full or degraded
//! quality, against the process-wide shared caches.
//!
//! The work kinds map onto the paper's exploratory-analysis verbs:
//!
//! * [`ServiceWork::Regrid`] plans through the shared
//!   [`cdat::plan_cache`] — many tenants regridding the same grid pair
//!   build the sparse weight plan once between them;
//! * [`ServiceWork::Analysis`] runs deterministic masked reductions;
//! * [`ServiceWork::Render`] rasterizes a small synthetic scene — the
//!   degraded variant is the service edition of the hyperwall's low-res
//!   mirror frame (quarter resolution, same content).
//!
//! Degraded quality is the Overloaded rung of the shed ladder: cheaper,
//! coarser, but never absent — a tenant under overload still gets an
//! answer, just a smaller one.

use crate::protocol::{ResultQuality, ServiceWork};
use crate::{Result, WallError};
use cdms::grid::RectGrid;
use cdms::{MaskedArray, Variable};
use std::time::Instant;

/// Outcome of one executed work item.
#[derive(Debug, Clone, Copy)]
pub struct WorkOutcome {
    /// Content digest of the produced result (deterministic per
    /// `(work, quality)` — the tests verify reproducibility with it).
    pub digest: u64,
    /// Wall time spent computing, in milliseconds.
    pub compute_ms: f64,
}

fn mix(h: u64, v: u64) -> u64 {
    // splitmix64 finalizer as a running fold
    let mut z = h ^ v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn digest_f64(h: u64, v: f64) -> u64 {
    mix(h, v.to_bits())
}

fn clamp_dim(n: usize, lo: usize, hi: usize) -> usize {
    n.clamp(lo, hi)
}

/// Executes `work` at `quality`, returning a content digest and timing.
pub fn perform(work: &ServiceWork, quality: ResultQuality) -> Result<WorkOutcome> {
    let start = Instant::now();
    let degraded = quality == ResultQuality::Degraded;
    let digest = match work {
        ServiceWork::Regrid { src, dst, seed } => {
            let (mut sy, mut sx) = (clamp_dim(src.0, 4, 64), clamp_dim(src.1, 4, 128));
            let (mut dy, mut dx) = (clamp_dim(dst.0, 3, 64), clamp_dim(dst.1, 3, 128));
            if degraded {
                // coarsen everything: quarter-size plan, quarter-size apply
                sy = clamp_dim(sy / 2, 4, 64);
                sx = clamp_dim(sx / 2, 4, 128);
                dy = clamp_dim(dy / 4, 3, 64);
                dx = clamp_dim(dx / 4, 3, 128);
            }
            let src_grid = RectGrid::uniform(sy, sx).map_err(wrap)?;
            let dst_grid = RectGrid::uniform(dy, dx).map_err(wrap)?;
            let s = *seed;
            let arr = MaskedArray::from_fn(&[sy, sx], |ix| {
                let v = mix(s, (ix[0] * 131 + ix[1]) as u64);
                ((v % 1000) as f32) / 500.0 - 1.0
            });
            let var = Variable::new("svc", arr, vec![src_grid.lat.clone(), src_grid.lon.clone()])
                .map_err(wrap)?;
            let out = cdat::regrid::bilinear(&var, &dst_grid).map_err(wrap)?;
            let mut h = mix(0x5eed, *seed);
            for (i, v) in out.array.data().iter().enumerate().step_by(7) {
                h = digest_f64(h, f64::from(*v) + i as f64);
            }
            h
        }
        ServiceWork::Analysis { seed, len } => {
            let n = clamp_dim(*len, 16, 65_536);
            let (n, stride) = if degraded { (n, 4) } else { (n, 1) };
            let s = *seed;
            let arr = MaskedArray::from_fn(&[n], |ix| {
                let v = mix(s, ix[0] as u64);
                ((v % 10_000) as f32) / 100.0
            });
            // coarsened analysis: reduce a strided subsample when degraded
            let subset = if stride > 1 {
                MaskedArray::from_fn(&[n / stride], |ix| {
                    let v = mix(s, (ix[0] * stride) as u64);
                    ((v % 10_000) as f32) / 100.0
                })
            } else {
                arr
            };
            let m = cdat::reduce::moments(&subset);
            let mut h = mix(0xa11a, *seed);
            h = digest_f64(h, m.mean().unwrap_or(0.0));
            digest_f64(h, m.variance().unwrap_or(0.0))
        }
        ServiceWork::Render { width, height, seed } => {
            let (mut w, mut hgt) = (clamp_dim(*width, 8, 256), clamp_dim(*height, 8, 256));
            if degraded {
                // the low-res mirror frame: quarter resolution
                w = clamp_dim(w / 4, 8, 256);
                hgt = clamp_dim(hgt / 4, 8, 256);
            }
            let mut fb = rvtk::render::Framebuffer::new(w, hgt);
            let s = *seed;
            for y in 0..hgt {
                for x in 0..w {
                    let v = mix(s, (y * w + x) as u64);
                    if v.is_multiple_of(3) {
                        let c = ((v >> 8) % 256) as f32 / 255.0;
                        fb.set_pixel(x, y, rvtk::Color::rgb(c, 1.0 - c, 0.5));
                    }
                }
            }
            let covered = fb.covered_pixels(rvtk::Color::BLACK) as u64;
            let lum = f64::from(fb.mean_luminance());
            digest_f64(mix(0xfb00, covered), lum)
        }
    };
    Ok(WorkOutcome { digest, compute_ms: start.elapsed().as_secs_f64() * 1e3 })
}

fn wrap(e: cdms::CdmsError) -> WallError {
    WallError::Render(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcomes_are_deterministic_per_quality() {
        let works = [
            ServiceWork::Regrid { src: (16, 32), dst: (8, 16), seed: 7 },
            ServiceWork::Analysis { seed: 9, len: 512 },
            ServiceWork::Render { width: 64, height: 48, seed: 11 },
        ];
        for w in &works {
            let a = perform(w, ResultQuality::Full).unwrap();
            let b = perform(w, ResultQuality::Full).unwrap();
            assert_eq!(a.digest, b.digest, "{w:?} full-quality digest must be stable");
            let d1 = perform(w, ResultQuality::Degraded).unwrap();
            let d2 = perform(w, ResultQuality::Degraded).unwrap();
            assert_eq!(d1.digest, d2.digest, "{w:?} degraded digest must be stable");
            assert_ne!(a.digest, d1.digest, "{w:?} degraded result differs from full");
        }
    }

    #[test]
    fn regrid_work_hits_the_shared_plan_cache() {
        let w = ServiceWork::Regrid { src: (21, 43), dst: (9, 19), seed: 3 };
        let before = cdat::plan_cache::global_stats();
        perform(&w, ResultQuality::Full).unwrap();
        let mid = cdat::plan_cache::global_stats();
        perform(&w, ResultQuality::Full).unwrap();
        let after = cdat::plan_cache::global_stats();
        assert!(
            mid.hits + mid.misses > before.hits + before.misses,
            "first run consulted the shared cache"
        );
        assert!(after.hits > mid.hits, "second identical regrid reuses the plan");
    }

    #[test]
    fn degraded_render_is_strictly_cheaper() {
        let w = ServiceWork::Render { width: 256, height: 256, seed: 5 };
        // warm up once to avoid first-touch noise, then compare
        perform(&w, ResultQuality::Full).unwrap();
        let full = perform(&w, ResultQuality::Full).unwrap();
        let degraded = perform(&w, ResultQuality::Degraded).unwrap();
        assert!(
            degraded.compute_ms <= full.compute_ms * 1.5,
            "degraded ({:.3}ms) should not cost more than full ({:.3}ms)",
            degraded.compute_ms,
            full.compute_ms
        );
    }
}
