//! Quickstart: synthesize a small atmosphere, slice it, render to PPM.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dv3d::prelude::*;
use uvcdat::cdms::synth::SynthesisSpec;
use uvcdat::dv3d;

fn main() -> Result<()> {
    let out_dir = std::path::Path::new("out");
    std::fs::create_dir_all(out_dir).expect("create out/");

    // 1. Data: a deterministic synthetic atmosphere (stands in for model
    //    output pulled from the Earth System Grid).
    let ds = SynthesisSpec::new(4, 8, 36, 72).seed(7).build();
    let ta = ds.variable("ta").expect("air temperature").time_slab(0)?;
    println!("loaded {} {:?} [{}]", ta.id, ta.shape(), ta.units().unwrap_or("?"));

    // 2. Translation: CDMS variable → renderable image data.
    let image = translate_scalar(&ta, &TranslationOptions::default())?;

    // 3. A DV3D cell with a Slicer plot and a coastline base map.
    let mut cell = Dv3dCell::new("ta / synth_atmosphere", PlotSpec::slicer(image));
    cell.set_base_map(ds.variable("sftlf").expect("land fraction"))?;

    // 4. Interact: enable the x-plane too, drag the z slice up two levels,
    //    rotate the camera a little.
    cell.configure(&ConfigOp::TogglePlane { axis: dv3d::interaction::Axis3::X })?;
    cell.configure(&ConfigOp::MoveSlice { axis: dv3d::interaction::Axis3::Z, delta: 2 })?;
    cell.configure(&ConfigOp::Camera(CameraOp::Azimuth(25.0)))?;

    // 5. Render offscreen and save.
    let frame = cell.render(640, 480)?;
    let path = out_dir.join("quickstart_slicer.ppm");
    frame.save_ppm(&path).expect("write ppm");
    println!(
        "rendered {} ({} px covered) -> {}",
        cell.plot().status_line(),
        frame.covered_pixels(uvcdat::rvtk::Color::BLACK),
        path.display()
    );

    // 6. Probe a value like the cell's pick display would.
    if let Some((p, v)) = cell.pick(320.0, 240.0, 640, 480) {
        println!("pick at ({:.0}E, {:.0}N, lev {:.0}) = {:.2} K", p.x, p.y, p.z, v);
    }
    Ok(())
}
