//! EOF pattern extraction — the analysis side of exploratory knowledge
//! discovery: decompose a variable into its dominant modes of variability
//! and *look* at them.
//!
//! ```text
//! cargo run --release --example eof_patterns
//! ```

use dv3d::prelude::*;
use uvcdat::cdat::eof::eof_analysis;
use uvcdat::cdms::synth::SynthesisSpec;
use uvcdat::dv3d;

fn main() -> Result<()> {
    std::fs::create_dir_all("out").expect("create out/");

    // The synthetic wave field is dominated by a single eastward-propagating
    // mode — a propagating wave decomposes into two EOFs in quadrature with
    // similar explained variance (the classic propagating-signal signature).
    let ds = SynthesisSpec::new(60, 1, 24, 48).noise(0.1).wave(8.0, 5.0).build();
    let wave = ds.variable("wave").unwrap();

    let result = eof_analysis(wave, 4).expect("eof analysis");
    println!("EOF decomposition of 'wave' ({} modes):", result.eofs.len());
    for (k, ev) in result.explained.iter().enumerate() {
        println!("  mode {}: {:.1}% of variance", k + 1, 100.0 * ev);
    }
    let pair = result.explained[0] + result.explained[1];
    println!("modes 1+2 together: {:.1}% — a propagating wave appears as a", 100.0 * pair);
    println!("quadrature pair, exactly what the leading two modes show.");
    assert!(pair > 0.8, "the planted wave should dominate");

    // Render EOF1 as a pseudocolor map (a one-layer slicer cell).
    let eof1 = &result.eofs[0];
    let image = translate_scalar(eof1, &TranslationOptions::default())?;
    let mut cell = Dv3dCell::new("EOF 1 of wave", PlotSpec::slicer(image));
    cell.set_base_map(ds.variable("sftlf").unwrap())?;
    cell.configure(&ConfigOp::SetColormap("coolwarm".into()))?;
    let fb = cell.render(480, 360)?;
    fb.save_ppm("out/eof1_pattern.ppm").expect("save");
    println!("EOF1 pattern -> out/eof1_pattern.ppm");

    // The PC time series oscillates at the wave frequency: count its zero
    // crossings (k=5, c=8°/day → period 360/(5·8) = 9 days).
    let pc1 = &result.pcs[0];
    let crossings = pc1.windows(2).filter(|w| w[0].signum() != w[1].signum()).count();
    let period = 2.0 * (pc1.len() as f64) / crossings as f64;
    println!("PC1 oscillation period ≈ {period:.1} days (theory: 9.0)");
    assert!((period - 9.0).abs() < 2.0);
    Ok(())
}
