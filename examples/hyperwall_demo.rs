//! The Fig 5 scenario: a 15-cell workflow distributed over a hyperwall.
//!
//! Spawns a server plus 15 display clients on loopback TCP, ships each
//! client its 1-cell sub-workflow, broadcasts an interaction, runs a few
//! distributed frames, and compares against rendering everything on a
//! single node.
//!
//! ```text
//! cargo run --release --example hyperwall_demo
//! ```

use uvcdat::dv3d::interaction::{Axis3, CameraOp, ConfigOp};
use uvcdat::hyperwall::client::ClientNode;
use uvcdat::hyperwall::cluster::{run_single_node_baseline, run_wall};
use uvcdat::hyperwall::layout::WallLayout;
use uvcdat::hyperwall::server::HyperwallServer;
use uvcdat::hyperwall::workflow::WallWorkflowConfig;

fn main() {
    let wall = WallLayout::nccs();
    println!(
        "NCCS hyperwall: {}x{} panels, {:.1} Mpixels total",
        wall.rows,
        wall.cols,
        wall.total_pixels() as f64 / 1e6
    );

    // A reduced-size stand-in for the wall (full panel resolution would
    // work identically, just slower in software rendering).
    let cfg = WallWorkflowConfig {
        n_cells: wall.n_panels(),
        synth: (2, 4, 24, 48),
        cell_px: (192, 144),
    };
    let ops = vec![
        ConfigOp::Camera(CameraOp::Azimuth(25.0)),
        ConfigOp::MoveSlice { axis: Axis3::Z, delta: 1 },
        ConfigOp::Leveling { dx: 0.1, dy: 0.2 },
    ];

    println!("\nlaunching {} clients + server on loopback TCP ...", cfg.n_cells);
    let report = run_wall(&cfg, 4, 3, &ops).expect("wall run");

    println!("workflow assignment + Ready handshake: {:.1} ms", report.assign_ms);
    for f in &report.frames {
        println!(
            "frame {}: round-trip {:.1} ms | server mirror {:.1} ms | client render mean {:.1} ms",
            f.frame,
            f.round_trip_ms,
            f.mirror_ms,
            f.client_render_ms.iter().sum::<f64>() / f.client_render_ms.len() as f64,
        );
    }
    let mean_op_ms =
        report.op_broadcast_ms.iter().sum::<f64>() / report.op_broadcast_ms.len().max(1) as f64;
    println!(
        "interaction broadcast to {} clients: {:.2} ms mean",
        report.n_clients, mean_op_ms
    );
    println!("total client frames rendered: {}", report.client_frames);

    // Per-cell mirror cost vs full-res client cost (the design rationale:
    // the control node only pays reduced-resolution prices).
    let mirror_per_cell = report.mean_mirror_ms() / cfg.n_cells as f64;
    println!(
        "\nserver mirror: {:.2} ms/cell at 1/4 resolution vs {:.2} ms/cell full-res on clients",
        mirror_per_cell,
        report.mean_client_render_ms()
    );

    let baseline_ms = run_single_node_baseline(&cfg, 3).expect("baseline");
    let distributed_ms: f64 = report.frames.iter().map(|f| f.round_trip_ms).sum();
    println!(
        "single-node full-res baseline (3 frames, {} cells): {:.0} ms",
        cfg.n_cells, baseline_ms
    );
    println!(
        "distributed wall (3 frames, round-trip incl. mirror): {:.0} ms",
        distributed_ms
    );
    println!(
        "(this host has {} CPU(s): with one core the distributed run shows \
         protocol overhead only; on a 15-node cluster each client's {:.1} ms \
         render happens concurrently)",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        report.mean_client_render_ms()
    );

    // Finally, save the server's touchscreen view: the whole wall as a
    // low-resolution mosaic.
    let mut server = HyperwallServer::bind(&cfg, 4).expect("bind");
    let addr = server.addr().expect("addr");
    let clients: Vec<_> = (0..cfg.n_cells)
        .map(|id| {
            std::thread::spawn(move || ClientNode::connect(addr, id).expect("connect").run())
        })
        .collect();
    server.accept_clients(cfg.n_cells).expect("accept");
    server.assign_workflows(&cfg).expect("assign");
    let mosaic = server.mirror_mosaic(&wall).expect("mosaic");
    std::fs::create_dir_all("out").ok();
    mosaic.save_ppm("out/hyperwall_mosaic.ppm").expect("save mosaic");
    println!(
        "\nserver mirror mosaic ({}x{} px, 5x3 panels) -> out/hyperwall_mosaic.ppm",
        mosaic.width(),
        mosaic.height()
    );
    server.shutdown().expect("shutdown");
    for c in clients {
        c.join().expect("join").expect("client");
    }
}
