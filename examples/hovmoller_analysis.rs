//! Hovmöller analysis of a propagating equatorial wave — Fig 4's scenario.
//!
//! Builds the time-as-vertical Hovmöller volume of the synthetic wave
//! field, renders it as both a Hovmöller slicer and a Hovmöller volume
//! plot, and quantifies the ridge slope (the wave's phase speed) against
//! the value the generator was configured with.
//!
//! ```text
//! cargo run --release --example hovmoller_analysis
//! ```

use dv3d::prelude::*;
use uvcdat::cdat::hovmoller;
use uvcdat::cdms::synth::SynthesisSpec;
use uvcdat::dv3d;
use uvcdat::dv3d::interaction::Axis3;

fn main() -> Result<()> {
    let out_dir = std::path::Path::new("out");
    std::fs::create_dir_all(out_dir).expect("create out/");

    // The generator plants an eastward wave at 8°/day, wavenumber 5.
    let configured_speed = 8.0;
    let ds = SynthesisSpec::new(30, 1, 24, 72)
        .noise(0.05)
        .wave(configured_speed, 5.0)
        .build();
    let wave = ds.variable("wave").unwrap();

    // --- quantitative readout: the Hovmöller diagram's ridge slope ---
    let section = hovmoller::lon_time_section(wave, (-15.0, 15.0))?;
    let measured = hovmoller::zonal_phase_speed(&section).expect("phase speed");
    println!("configured phase speed: {configured_speed:.1} deg/day");
    println!("measured   phase speed: {measured:.1} deg/day (from the Hovmoller ridge)");
    assert!(
        (measured - configured_speed).abs() < 2.6,
        "Hovmoller readout should recover the configured speed"
    );

    // --- visual: time-as-z volume, sliced and volume-rendered ---
    let volume_var = hovmoller::hovmoller_volume(wave)?;
    let image = translate_scalar(&volume_var, &TranslationOptions::default())?;

    let mut slicer = Dv3dCell::new("wave hovmoller slicer", PlotSpec::hovmoller_slicer(image.clone()));
    // browse a few "heights" (= times) like a scientist dragging the plane
    for step in 0..3 {
        slicer.configure(&ConfigOp::MoveSlice { axis: Axis3::Z, delta: 8 })?;
        let fb = slicer.render(480, 360)?;
        let path = out_dir.join(format!("hovmoller_slice_t{step}.ppm"));
        fb.save_ppm(&path).expect("write ppm");
        println!("slicer step {step}: {} -> {}", slicer.plot().status_line(), path.display());
    }

    let mut volume = Dv3dCell::new("wave hovmoller volume", PlotSpec::hovmoller_volume(image));
    volume.configure(&ConfigOp::Camera(CameraOp::Azimuth(40.0)))?;
    volume.configure(&ConfigOp::Leveling { dx: 0.3, dy: 0.2 })?;
    let fb = volume.render(480, 360)?;
    let path = out_dir.join("hovmoller_volume.ppm");
    fb.save_ppm(&path).expect("write ppm");
    println!(
        "volume: {} px covered -> {}",
        fb.covered_pixels(uvcdat::rvtk::Color::BLACK),
        path.display()
    );

    // The diagonal ridges in these renders ARE the propagation: each
    // vertical step is one day, each ridge shifts east by the phase speed.
    Ok(())
}
