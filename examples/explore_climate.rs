//! Exploratory multi-plot session — the paper's Fig 2/Fig 3 scenario.
//!
//! A 2×2 spreadsheet: a temperature slicer with a geopotential contour
//! overlay, a humidity volume rendering, an isosurface of temperature
//! colored by humidity, and a wind vector slicer. Configuration ops
//! propagate to all active cells; every frame saves as a PPM.
//!
//! ```text
//! cargo run --release --example explore_climate
//! ```

use dv3d::prelude::*;
use uvcdat::cdms::synth::SynthesisSpec;
use uvcdat::dv3d::interaction::{Axis3, VectorMode};
use uvcdat::{cdat, dv3d};

fn main() -> Result<()> {
    let out_dir = std::path::Path::new("out");
    std::fs::create_dir_all(out_dir).expect("create out/");

    let ds = SynthesisSpec::new(2, 8, 32, 64).seed(11).build();
    let opts = TranslationOptions::default();

    // Prepare the four variables' image data.
    let ta = ds.variable("ta").unwrap().time_slab(0)?;
    let zg = ds.variable("zg").unwrap().time_slab(0)?;
    let hus = ds.variable("hus").unwrap().time_slab(0)?;
    let ua = ds.variable("ua").unwrap().time_slab(0)?;
    let va = ds.variable("va").unwrap().time_slab(0)?;

    let ta_img = translate_scalar(&ta, &opts)?;
    let zg_img = translate_scalar(&zg, &opts)?;
    let hus_img = translate_scalar(&hus, &opts)?;
    let wind_img = translate_vector(&ua, &va, &opts)?;

    // Build the spreadsheet (Fig 2's grid of coordinated cells).
    let mut sheet = Dv3dSpreadsheet::new(2, 2);
    let mut slicer = Dv3dCell::new("ta + zg contours", PlotSpec::slicer_with_overlay(ta_img.clone(), zg_img));
    slicer.set_base_map(ds.variable("sftlf").unwrap())?;
    sheet.place((0, 0), slicer)?;
    sheet.place((0, 1), Dv3dCell::new("hus volume", PlotSpec::volume(hus_img.clone())))?;
    // Fig 3's isosurface: temperature surface colored by humidity.
    sheet.place(
        (1, 0),
        Dv3dCell::new("ta isosurface / hus", PlotSpec::isosurface_colored(ta_img, hus_img)),
    )?;
    let mut vec_cell = Dv3dCell::new("wind vectors", PlotSpec::vector_slicer(wind_img));
    vec_cell.configure(&ConfigOp::SetVectorMode(VectorMode::Streamlines))?;
    sheet.place((1, 1), vec_cell)?;

    // Synchronized interaction: one gesture, all active cells respond.
    sheet.configure_active(&ConfigOp::Camera(CameraOp::Azimuth(30.0)))?;
    sheet.configure_active(&ConfigOp::Camera(CameraOp::Elevation(-10.0)))?;
    sheet.configure_active(&ConfigOp::MoveSlice { axis: Axis3::Z, delta: 2 })?;
    // leveling drag shapes the volume's transfer function interactively
    sheet.configure_active(&ConfigOp::Leveling { dx: -0.2, dy: 0.3 })?;

    let frames = sheet.render_all(480, 360)?;
    for (at, fb) in &frames {
        let path = out_dir.join(format!("explore_cell_{}_{}.ppm", at.0, at.1));
        fb.save_ppm(&path).expect("write ppm");
        let name = &sheet.cell(*at).unwrap().name;
        println!(
            "cell {:?} '{}' -> {} ({} px)",
            at,
            name,
            path.display(),
            fb.covered_pixels(uvcdat::rvtk::Color::BLACK)
        );
    }

    // A quantitative aside the GUI's calculator pane would run:
    let mut ds_mut = ds.clone();
    let gm = dv3d::calculator::evaluate(&mut ds_mut, "avg(ta, 'lat', 'lon', 'lev')")?;
    let series = gm.as_variable().unwrap();
    println!(
        "global-mean ta by timestep: {:?}",
        series.array.data().iter().map(|v| format!("{v:.2}")).collect::<Vec<_>>()
    );

    // And a pattern correlation between temperature and geopotential.
    let r = cdat::statistics::correlation(&ta, &ds.variable("zg").unwrap().time_slab(0)?)
        .expect("correlation");
    println!("pattern correlation ta vs zg: {r:.3}");
    Ok(())
}
