//! Provenance-driven exploration — the §III.F scenario.
//!
//! Builds a plot workflow action by action, configures it, branches the
//! version tree to compare a slicer against a volume rendering of the same
//! data, reverts, saves/reloads the whole vistrail, and demonstrates the
//! loosely coupled external-tool integration (an "R-like" summary tool).
//!
//! ```text
//! cargo run --release --example provenance_workflow
//! ```

use uvcdat::dv3d::modules::{prebuilt_plot_workflow, register_all};
use uvcdat::standard_registry;
use uvcdat::vistrails::executor::Executor;
use uvcdat::vistrails::module::ModuleRegistry;
use uvcdat::vistrails::provenance::{Action, Vistrail};
use uvcdat::vistrails::value::{ParamValue, WfData};

fn main() {
    // 1. A prebuilt workflow from the plot palette.
    let wf = prebuilt_plot_workflow("slicer", "ta", (2, 4, 20, 40)).expect("prebuilt");
    let mut vt = wf.vistrail.clone();
    let slicer_head = wf.version;
    vt.tag(slicer_head, "slicer").unwrap();
    println!("built '{}' with {} provenance versions", vt.name, vt.len());

    // 2. Execute it.
    let mut exec = Executor::new(standard_registry());
    let pipeline = vt.materialize(slicer_head).unwrap();
    let r1 = exec.execute(&pipeline).unwrap();
    println!(
        "slicer coverage: {:.3} ({} modules ran, {} cache hits)",
        r1.output(wf.cell_module, "coverage").and_then(WfData::as_float).unwrap(),
        r1.len(),
        r1.cache_hits()
    );

    // 3. Branch: same data, volume rendering instead (the paper's "start a
    //    new branch of investigation without losing the previous results").
    let volume_head = vt
        .add_actions(
            slicer_head,
            vec![
                Action::DeleteModule { id: 11 },
                Action::AddModule { id: 21, type_name: "dv3d.VolumePlot".into() },
                Action::AddConnection { from: (10, "image".into()), to: (21, "image".into()) },
                Action::AddConnection { from: (21, "plot".into()), to: (12, "plot".into()) },
            ],
        )
        .unwrap();
    vt.tag(volume_head, "volume").unwrap();
    let r2 = exec.execute(&vt.materialize(volume_head).unwrap()).unwrap();
    println!(
        "volume branch coverage: {:.3} ({} cache hits — upstream reused)",
        r2.output(12, "coverage").and_then(WfData::as_float).unwrap(),
        r2.cache_hits()
    );

    // 4. Diff the branches, then hop back to the slicer — nothing was lost.
    let (only_a, only_b) = vt.diff(slicer_head, volume_head).unwrap();
    println!("diff slicer→volume: {} actions removed, {} added:", only_a.len(), only_b.len());
    for a in &only_b {
        println!("  + {}", a.describe());
    }
    let r3 = exec.execute(&vt.materialize(vt.tagged("slicer").unwrap()).unwrap()).unwrap();
    println!("re-executed 'slicer' tag entirely from cache: {} hits", r3.cache_hits());

    // 5. Persist the vistrail (the .vt file) and reload it.
    let json = vt.to_json().unwrap();
    let reloaded = Vistrail::from_json(&json).unwrap();
    assert_eq!(reloaded.materialize(volume_head).unwrap(), vt.materialize(volume_head).unwrap());
    println!("vistrail serialized to {} bytes and reloaded identically", json.len());

    // 6. Loosely coupled integration: wrap an external statistics "tool"
    //    (standing in for R/MatLab in Fig 1) and call it from a workflow.
    let mut reg = ModuleRegistry::new();
    register_all(&mut reg);
    reg.register_external_tool("external", "RSummary", |inputs, _params| {
        let x = inputs
            .get("input")
            .and_then(WfData::as_float)
            .ok_or("RSummary needs a numeric input")?;
        Ok(format!("summary(x): mean={x:.4}"))
    });
    let mut p = uvcdat::vistrails::pipeline::Pipeline::new();
    p.add_module(1, "cdms.SynthSource").unwrap();
    p.set_parameter(1, "nlat", ParamValue::Int(8)).unwrap();
    p.set_parameter(1, "nlon", ParamValue::Int(16)).unwrap();
    p.add_module(2, "cdms.SelectVariable").unwrap();
    p.set_parameter(2, "name", ParamValue::Str("ta".into())).unwrap();
    p.connect((1, "dataset"), (2, "dataset")).unwrap();
    // a tiny adapter module turning the variable into its global mean float
    reg.register_fn(
        "cdat",
        "GlobalMean",
        &[("variable", uvcdat::vistrails::module::PortType::Opaque("cdms.Variable".into()))],
        &[("value", uvcdat::vistrails::module::PortType::Float)],
        |inputs, _| {
            let v = inputs
                .get("variable")
                .and_then(|d| d.as_opaque::<uvcdat::cdms::Variable>())
                .ok_or_else(|| uvcdat::vistrails::WfError::Execution {
                    module: 0,
                    message: "missing variable".into(),
                })?;
            let mean = v.array.mean().unwrap_or(f32::NAN) as f64;
            Ok(uvcdat::vistrails::module::single("value", WfData::Float(mean)))
        },
    );
    p.add_module(3, "cdat.GlobalMean").unwrap();
    p.connect((2, "variable"), (3, "variable")).unwrap();
    p.add_module(4, "external.RSummary").unwrap();
    p.connect((3, "value"), (4, "input")).unwrap();
    let mut exec2 = Executor::new(reg);
    let out = exec2.execute(&p).unwrap();
    println!(
        "loosely coupled tool said: {}",
        out.output(4, "result").and_then(|d| d.as_str().map(String::from)).unwrap()
    );
}
