//! Offline stand-in for `serde_json`: renders and parses the serde
//! stand-in's [`Value`] tree as real JSON text. Covers the workspace's call
//! surface: `to_string`, `to_vec`, `from_str`, `from_slice`, plus `Value`
//! re-exported for ad-hoc inspection.

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(m: impl Into<String>) -> Error {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error(e.0)
    }
}

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

// ------------------------------------------------------------------ writing

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's shortest round-trippable repr; force a decimal point
                // so integral floats read back as floats.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // serde_json writes non-finite floats as null
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

/// Serializes a value to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes a value to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

// ------------------------------------------------------------------ parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{kw}'")))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(b) => Err(self.err(&format!("unexpected byte 0x{b:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // surrogate pair
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes.get(self.pos + 1..self.pos + 3)
                                    != Some(b"\\u")
                                {
                                    return Err(self.err("lone surrogate"));
                                }
                                let hex2 = self
                                    .bytes
                                    .get(self.pos + 3..self.pos + 7)
                                    .ok_or_else(|| self.err("truncated surrogate"))?;
                                let hex2 = std::str::from_utf8(hex2)
                                    .map_err(|_| self.err("bad surrogate"))?;
                                let lo = u32::from_str_radix(hex2, 16)
                                    .map_err(|_| self.err("bad surrogate"))?;
                                self.pos += 6;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("bad surrogate pair"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("bad codepoint"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 scalar
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err(&format!("invalid number '{text}'")))
    }
}

/// Parses a JSON string into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser::new(s);
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(T::from_value(&value)?)
}

/// Parses JSON bytes into any deserializable type.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&42i64).unwrap(), "42");
        assert_eq!(from_str::<i64>("42").unwrap(), 42);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n".to_string()).unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<String>(r#""a\"b\n""#).unwrap(), "a\"b\n");
        assert_eq!(from_str::<String>(r#""é€""#).unwrap(), "é€");
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<Option<u64>> = vec![Some(1), None, Some(3)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,null,3]");
        assert_eq!(from_str::<Vec<Option<u64>>>(&json).unwrap(), v);

        let mut m: BTreeMap<u64, String> = BTreeMap::new();
        m.insert(3, "c".into());
        let json = to_string(&m).unwrap();
        assert_eq!(json, r#"{"3":"c"}"#);
        assert_eq!(from_str::<BTreeMap<u64, String>>(&json).unwrap(), m);
    }

    #[test]
    fn float_precision_survives() {
        for f in [0.1f64, 1e-12, 123456.789012345, -2.5e30, f64::MIN_POSITIVE] {
            let back: f64 = from_str(&to_string(&f).unwrap()).unwrap();
            assert_eq!(back, f, "{f}");
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<i64>("{").is_err());
        assert!(from_str::<i64>("12 34").is_err());
        assert!(from_str::<Vec<i64>>("[1,]").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
