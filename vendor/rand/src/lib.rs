//! Offline stand-in for `rand`: the `SeedableRng::seed_from_u64` +
//! `Rng::gen_range` surface this workspace uses, backed by xoshiro256**
//! seeded through SplitMix64. Deterministic for a given seed (the stream
//! differs from upstream `StdRng`, which is fine — callers only rely on
//! determinism, not the exact stream).

/// Seedable generator constructors.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types `gen_range` can produce. A single blanket `SampleRange` impl per
/// range shape hangs off this (as upstream); that is what lets inference
/// unify the range's element type with `gen_range`'s return type.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_between<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

/// Ranges (and other distributions) samplable by an RNG.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(*self.start(), *self.end(), true, rng)
    }
}

/// The raw generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }

    /// A uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        unit_f64(self.next_u64())
    }
}

impl<R: RngCore> Rng for R {}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → [0, 1)
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                if inclusive {
                    assert!(lo <= hi, "empty range");
                } else {
                    assert!(lo < hi, "empty range");
                }
                let u = unit_f64(rng.next_u64()) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}

float_uniform!(f32, f64);

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                if inclusive {
                    assert!(lo <= hi, "empty range");
                } else {
                    assert!(lo < hi, "empty range");
                }
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via SplitMix64 — the stand-in's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as the xoshiro authors recommend
            let mut sm = seed;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0..1.0), b.gen_range(0.0..1.0));
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(
            StdRng::seed_from_u64(7).gen_range(0.0..1.0),
            c.gen_range(0.0..1.0)
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut sum = 0.0;
        for _ in 0..2000 {
            let v: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
            sum += v;
            let n = rng.gen_range(3i64..9);
            assert!((3..9).contains(&n));
            let m = rng.gen_range(0usize..=4);
            assert!(m <= 4);
        }
        // crude uniformity check: mean of U(-1,1) near 0
        assert!((sum / 2000.0).abs() < 0.05, "{sum}");
    }
}
