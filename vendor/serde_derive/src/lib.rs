//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline serde
//! stand-in. Parses the item with hand-rolled `proc_macro` token walking
//! (no syn/quote on this image) and emits impls against serde's value-tree
//! model. Supports non-generic structs (named/tuple/unit) and enums with
//! unit, tuple, and struct variants — exactly the shapes this workspace
//! derives.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[derive(Debug)]
enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<(String, Fields)> },
}

/// Skips attribute tokens (`#` + bracket group) starting at `i`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips a visibility modifier (`pub`, `pub(crate)`, …) starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Splits a token list on top-level commas, tracking `<…>` nesting so
/// commas inside generic arguments don't split fields.
fn split_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Field names of a named-field body (`{ a: T, pub b: U }`).
fn parse_named(body: &TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    split_commas(&tokens)
        .into_iter()
        .filter(|seg| !seg.is_empty())
        .map(|seg| {
            let i = skip_vis(&seg, skip_attrs(&seg, 0));
            match seg.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive: expected field name, found {other:?}"),
            }
        })
        .collect()
}

/// Field count of a tuple body (`(T, U)`).
fn count_tuple(body: &TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    split_commas(&tokens).into_iter().filter(|seg| !seg.is_empty()).count()
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, found {other:?}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive: generic types are not supported by the offline stand-in");
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named(&g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple(&g.stream()))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: expected enum body, found {other:?}"),
            };
            let body_tokens: Vec<TokenTree> = body.into_iter().collect();
            let variants = split_commas(&body_tokens)
                .into_iter()
                .filter(|seg| !seg.is_empty())
                .map(|seg| {
                    let j = skip_attrs(&seg, 0);
                    let vname = match seg.get(j) {
                        Some(TokenTree::Ident(id)) => id.to_string(),
                        other => panic!("serde_derive: expected variant name, found {other:?}"),
                    };
                    let fields = match seg.get(j + 1) {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            Fields::Named(parse_named(&g.stream()))
                        }
                        Some(TokenTree::Group(g))
                            if g.delimiter() == Delimiter::Parenthesis =>
                        {
                            Fields::Tuple(count_tuple(&g.stream()))
                        }
                        _ => Fields::Unit,
                    };
                    (vname, fields)
                })
                .collect();
            Item::Enum { name, variants }
        }
        other => panic!("serde_derive: cannot derive for '{other}' items"),
    }
}

// ------------------------------------------------------------------ codegen

fn ser_named_object(fields: &[String], accessor: impl Fn(&str) -> String) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({})),",
                accessor(f)
            )
        })
        .collect();
    format!("::serde::Value::Object(::std::vec![{}])", entries.join(""))
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Named(fs) => ser_named_object(fs, |f| format!("&self.{f}")),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", items.join(""))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\
                   fn to_value(&self) -> ::serde::Value {{ {body} }}\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                    ),
                    Fields::Tuple(1) => format!(
                        "{name}::{v}(__f0) => ::serde::Value::Object(::std::vec![\
                           (::std::string::String::from(\"{v}\"), ::serde::Serialize::to_value(__f0))]),"
                    ),
                    Fields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(__f{i}),"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Object(::std::vec![\
                               (::std::string::String::from(\"{v}\"), \
                                ::serde::Value::Array(::std::vec![{}]))]),",
                            binders.join(","),
                            items.join("")
                        )
                    }
                    Fields::Named(fs) => {
                        let binders = fs.join(",");
                        let inner = ser_named_object(fs, |f| f.to_string());
                        format!(
                            "{name}::{v} {{ {binders} }} => ::serde::Value::Object(::std::vec![\
                               (::std::string::String::from(\"{v}\"), {inner})]),"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\
                   fn to_value(&self) -> ::serde::Value {{\
                     match self {{ {} }}\
                   }}\
                 }}",
                arms.join("")
            )
        }
    }
}

fn de_named_fields(payload: &str, fields: &[String]) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value(\
                   ::serde::__private::field({payload}, \"{f}\")?)?,"
            )
        })
        .collect::<Vec<_>>()
        .join("")
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
                Fields::Named(fs) => format!(
                    "::std::result::Result::Ok({name} {{ {} }})",
                    de_named_fields("__v", fs)
                ),
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
                ),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__els[{i}])?,"))
                        .collect();
                    format!(
                        "{{ let __els = ::serde::__private::elements(__v, {n})?;\
                           ::std::result::Result::Ok({name}({})) }}",
                        items.join("")
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\
                   fn from_value(__v: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => {
                        format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),")
                    }
                    Fields::Tuple(1) => format!(
                        "\"{v}\" => {{\
                           let __p = __payload.ok_or_else(|| \
                             ::serde::__private::missing_payload(\"{v}\"))?;\
                           ::std::result::Result::Ok({name}::{v}(\
                             ::serde::Deserialize::from_value(__p)?))\
                         }},"
                    ),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__els[{i}])?,"))
                            .collect();
                        format!(
                            "\"{v}\" => {{\
                               let __p = __payload.ok_or_else(|| \
                                 ::serde::__private::missing_payload(\"{v}\"))?;\
                               let __els = ::serde::__private::elements(__p, {n})?;\
                               ::std::result::Result::Ok({name}::{v}({}))\
                             }},",
                            items.join("")
                        )
                    }
                    Fields::Named(fs) => format!(
                        "\"{v}\" => {{\
                           let __p = __payload.ok_or_else(|| \
                             ::serde::__private::missing_payload(\"{v}\"))?;\
                           ::std::result::Result::Ok({name}::{v} {{ {} }})\
                         }},",
                        de_named_fields("__p", fs)
                    ),
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\
                   fn from_value(__v: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::DeError> {{\
                     let (__tag, __payload) = ::serde::__private::variant(__v)?;\
                     match __tag {{\
                       {}\
                       __other => ::std::result::Result::Err(\
                         ::serde::__private::unknown_variant(\"{name}\", __other)),\
                     }}\
                   }}\
                 }}",
                arms.join("")
            )
        }
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde_derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde_derive: generated Deserialize impl must parse")
}
