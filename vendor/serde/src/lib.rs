//! Offline stand-in for `serde`, providing the subset of the API this
//! workspace uses: `Serialize`/`Deserialize` traits (plus the derive macros
//! re-exported under the same names) over a JSON-shaped value tree.
//!
//! The real serde is a zero-copy visitor framework; this stand-in trades
//! that generality for a tiny self-contained implementation: serializing
//! builds a [`Value`] tree and deserializing walks one. `serde_json` in
//! `vendor/serde_json` renders and parses the tree. Wire shapes follow
//! serde_json's conventions (externally tagged enums, stringified integer
//! map keys) so anything that round-tripped before still does.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A JSON-shaped value tree — the serialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Signed integers (covers every integer the workspace serializes).
    Int(i64),
    /// Unsigned integers too large for `i64`.
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered object entries.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up an object key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    pub fn msg(m: impl Into<String>) -> DeError {
        DeError(m.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------- primitives

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::msg(format!("{n} out of range for {}", stringify!($t)))),
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::msg(format!("{n} out of range for {}", stringify!($t)))),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(DeError::msg(format!(
                        "expected integer, got {}", other.type_name()
                    ))),
                }
            }
        }
    )*};
}

int_impl!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        if *self <= i64::MAX as u64 {
            Value::Int(*self as i64)
        } else {
            Value::UInt(*self)
        }
    }
}

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Int(n) => u64::try_from(*n).map_err(|_| DeError::msg("negative u64")),
            Value::UInt(n) => Ok(*n),
            Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as u64),
            other => Err(DeError::msg(format!("expected integer, got {}", other.type_name()))),
        }
    }
}

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::msg(format!("expected bool, got {}", other.type_name()))),
        }
    }
}

macro_rules! float_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(n) => Ok(*n as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Null => Ok(<$t>::NAN), // serde_json writes non-finite floats as null
                    other => Err(DeError::msg(format!(
                        "expected number, got {}", other.type_name()
                    ))),
                }
            }
        }
    )*};
}

float_impl!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::msg(format!("expected string, got {}", other.type_name()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::msg(format!("expected char, got {}", other.type_name()))),
        }
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::msg(format!("expected array, got {}", other.type_name()))),
        }
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::msg(format!("expected array, got {}", other.type_name()))),
        }
    }
}

macro_rules! tuple_impl {
    ($( ($($n:tt $t:ident),+) )*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        let expect = [$($n,)+].len();
                        if items.len() != expect {
                            return Err(DeError::msg(format!(
                                "expected {expect}-tuple, got {} elements", items.len()
                            )));
                        }
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(DeError::msg(format!(
                        "expected array, got {}", other.type_name()
                    ))),
                }
            }
        }
    )*};
}

tuple_impl! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Map keys serialize as JSON object keys (strings); integer keys are
/// stringified exactly like serde_json does.
pub trait MapKey: Sized {
    fn to_key(&self) -> String;
    fn from_key(s: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, DeError> {
        Ok(s.to_string())
    }
}

macro_rules! int_key_impl {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, DeError> {
                s.parse().map_err(|_| DeError::msg(format!("bad integer map key '{s}'")))
            }
        }
    )*};
}

int_key_impl!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

// Grid addresses like `(row, col)` are common map keys in this workspace;
// encode them as "row,col" strings.
impl MapKey for (usize, usize) {
    fn to_key(&self) -> String {
        format!("{},{}", self.0, self.1)
    }
    fn from_key(s: &str) -> Result<Self, DeError> {
        let (a, b) = s
            .split_once(',')
            .ok_or_else(|| DeError::msg(format!("bad pair map key '{s}'")))?;
        let parse = |t: &str| {
            t.parse::<usize>()
                .map_err(|_| DeError::msg(format!("bad pair map key '{s}'")))
        };
        Ok((parse(a)?, parse(b)?))
    }
}

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect())
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::msg(format!("expected object, got {}", other.type_name()))),
        }
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect())
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::msg(format!("expected object, got {}", other.type_name()))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// --------------------------------------------------- derive support helpers

/// Helpers the derive macros expand to. Not part of the public contract.
pub mod __private {
    use super::{DeError, Value};

    static NULL: Value = Value::Null;

    /// Fetches a struct field; a missing key reads as `Null` so `Option`
    /// fields tolerate omission, like serde's `default` on options.
    pub fn field<'a>(v: &'a Value, name: &str) -> Result<&'a Value, DeError> {
        match v {
            Value::Object(entries) => Ok(entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or(&NULL)),
            other => Err(DeError::msg(format!(
                "expected object with field '{name}', got {}",
                other.type_name()
            ))),
        }
    }

    /// Splits an externally tagged enum value into (variant, payload).
    pub fn variant(v: &Value) -> Result<(&str, Option<&Value>), DeError> {
        match v {
            Value::Str(s) => Ok((s.as_str(), None)),
            Value::Object(entries) if entries.len() == 1 => {
                Ok((entries[0].0.as_str(), Some(&entries[0].1)))
            }
            other => Err(DeError::msg(format!(
                "expected enum (string or single-key object), got {}",
                other.type_name()
            ))),
        }
    }

    /// The payload of a multi-field tuple variant, as exactly `n` elements.
    pub fn elements(v: &Value, n: usize) -> Result<&[Value], DeError> {
        match v {
            Value::Array(items) if items.len() == n => Ok(items),
            Value::Array(items) => Err(DeError::msg(format!(
                "expected {n} tuple elements, got {}",
                items.len()
            ))),
            other => Err(DeError::msg(format!("expected array, got {}", other.type_name()))),
        }
    }

    /// Error for a payload-less variant that required one.
    pub fn missing_payload(variant: &str) -> DeError {
        DeError::msg(format!("variant '{variant}' is missing its payload"))
    }

    /// Error for an unknown variant name.
    pub fn unknown_variant(ty: &str, variant: &str) -> DeError {
        DeError::msg(format!("unknown {ty} variant '{variant}'"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
        assert_eq!(Option::<i64>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1usize, "a".to_string()), (2, "b".to_string())];
        let round: Vec<(usize, String)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(round, v);

        let mut m = BTreeMap::new();
        m.insert(10u64, vec![1.0f64, 2.0]);
        let round: BTreeMap<u64, Vec<f64>> = Deserialize::from_value(&m.to_value()).unwrap();
        assert_eq!(round, m);
        // integer keys become strings on the wire
        assert!(matches!(&m.to_value(), Value::Object(e) if e[0].0 == "10"));
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(bool::from_value(&Value::Int(1)).is_err());
        assert!(Vec::<i64>::from_value(&Value::Str("no".into())).is_err());
        assert!(<(i64, i64)>::from_value(&Value::Array(vec![Value::Int(1)])).is_err());
    }
}
