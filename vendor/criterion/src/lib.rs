//! Offline stand-in for `criterion`: the benchmark-group surface this
//! workspace uses (`benchmark_group`, `sample_size`, `throughput`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, the
//! `criterion_group!`/`criterion_main!` macros). No statistics engine:
//! each benchmark runs `sample_size` timed iterations after one warm-up
//! and reports the median to stdout.

use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness handle; groups hang off it.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup { name: name.to_string(), sample_size: 10 }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Criterion {
        run_one("", id, 10, &mut f);
        self
    }
}

/// A named set of related benchmarks sharing a sample size.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut BenchmarkGroup {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stand-in prints raw medians
    /// and does not normalise by throughput.
    pub fn throughput(&mut self, _t: Throughput) -> &mut BenchmarkGroup {
        self
    }

    pub fn bench_function<I: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut BenchmarkGroup {
        run_one(&self.name, &id.to_string(), self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut BenchmarkGroup {
        let sample_size = self.sample_size;
        run_one(&self.name, &id.label, sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one(group: &str, id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { sample_size, samples: Vec::new() };
    f(&mut b);
    let label = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    match b.median() {
        Some(m) => println!("bench {label}: median {:.3} ms ({} samples)", m.as_secs_f64() * 1e3, b.samples.len()),
        None => println!("bench {label}: no samples"),
    }
}

/// Handed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut payload: F) {
        black_box(payload()); // warm-up, untimed
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(payload());
            self.samples.push(t0.elapsed());
        }
    }

    fn median(&self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        let mut s = self.samples.clone();
        s.sort();
        Some(s[s.len() / 2])
    }
}

/// Identifies one parameterised benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId { label: format!("{function_name}/{parameter}") }
    }

    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Units-processed annotation (ignored by the stand-in's reporting).
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_times_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        // warm-up + 3 samples
        assert_eq!(runs, 4);
    }
}
