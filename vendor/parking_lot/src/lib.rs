//! Offline stand-in for `parking_lot`: the same non-poisoning `lock()`
//! signatures, backed by `std::sync`. Poisoned std locks are recovered
//! transparently (parking_lot has no poisoning at all).

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 400);
    }
}
