//! Offline stand-in for `bytes`: `Buf` (reading) and `BufMut` (writing)
//! with the little-endian accessors this workspace's binary format uses,
//! over plain `Vec<u8>` storage (no refcounted zero-copy slices).

macro_rules! get_le {
    ($($name:ident -> $t:ty),* $(,)?) => {
        $(
            fn $name(&mut self) -> $t {
                let mut b = [0u8; std::mem::size_of::<$t>()];
                self.copy_to_slice(&mut b);
                <$t>::from_le_bytes(b)
            }
        )*
    };
}

/// Reading cursor over a byte source.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, n: usize);

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    get_le! {
        get_u16_le -> u16,
        get_u32_le -> u32,
        get_u64_le -> u64,
        get_i32_le -> i32,
        get_i64_le -> i64,
        get_f32_le -> f32,
        get_f64_le -> f64
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// Writing interface.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { vec: Vec::with_capacity(cap) }
    }

    pub fn freeze(self) -> Bytes {
        Bytes { vec: self.vec }
    }

    /// Reserve capacity for at least `additional` more bytes, mirroring
    /// `bytes::BytesMut::reserve`. Writers that know their encoded size up
    /// front use this to pay for allocation exactly once.
    pub fn reserve(&mut self, additional: usize) {
        self.vec.reserve(additional);
    }

    /// Currently allocated capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.vec.capacity()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

// The real `bytes` crate exposes the written region mutably; the in-place
// section framer relies on this to patch a length placeholder after the
// payload has been written directly into the buffer.
impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

/// An immutable byte buffer (plain owned storage here, not refcounted).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    vec: Vec<u8>,
}

impl Bytes {
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { vec: data.to_vec() }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(vec: Vec<u8>) -> Bytes {
        Bytes { vec }
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_f64_le(-2.5);
        buf.put_slice(b"xyz");
        let frozen = buf.freeze();

        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_f64_le(), -2.5);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn deref_mut_allows_in_place_patching() {
        let mut buf = BytesMut::with_capacity(16);
        assert!(buf.capacity() >= 16);
        buf.put_u8(0xAA);
        buf.put_u64_le(0); // placeholder
        buf.put_slice(b"payload");
        let patch = (7u64).to_le_bytes();
        buf[1..9].copy_from_slice(&patch);
        let mut r: &[u8] = &buf;
        assert_eq!(r.get_u8(), 0xAA);
        assert_eq!(r.get_u64_le(), 7);
        buf.reserve(1024);
        assert!(buf.capacity() >= 16 + 1024);
    }

    #[test]
    fn advance_moves_the_cursor() {
        let data = [1u8, 2, 3, 4];
        let mut r: &[u8] = &data;
        r.advance(2);
        assert_eq!(r.get_u8(), 3);
        assert_eq!(r.remaining(), 1);
    }
}
