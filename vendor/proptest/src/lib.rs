//! Offline stand-in for `proptest`: the strategy-combinator surface this
//! workspace's property tests use (`prop_map`, `prop_flat_map`, numeric
//! ranges, `collection::vec`, `any::<bool>()`, the `proptest!` macro family).
//!
//! Sampling is deterministic — each test draws from a SplitMix64 stream
//! seeded by the test's own name — and there is no shrinking: a failing
//! case panics with the case index so it can be replayed exactly.

/// How a value is drawn. Mirrors upstream's `Strategy` with an associated
/// `Value`; `generate` replaces the value-tree machinery (no shrinking).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut test_runner::TestRng) -> Self::Value;

    fn prop_map<B, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> B,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, B, F: Fn(S::Value) -> B> Strategy for Map<S, F> {
    type Value = B;

    fn generate(&self, rng: &mut test_runner::TestRng) -> B {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut test_runner::TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let u = rng.unit_f64() as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}

float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($s:ident : $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut test_runner::TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(S0: 0);
tuple_strategy!(S0: 0, S1: 1);
tuple_strategy!(S0: 0, S1: 1, S2: 2);
tuple_strategy!(S0: 0, S1: 1, S2: 2, S3: 3);
tuple_strategy!(S0: 0, S1: 1, S2: 2, S3: 3, S4: 4);
tuple_strategy!(S0: 0, S1: 1, S2: 2, S3: 3, S4: 4, S5: 5);

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

/// Strategy behind `any::<bool>()`.
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut test_runner::TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// `any::<T>()` — canonical strategy for `T`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Per-run configuration (only the case count is honoured here).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

pub mod collection {
    use super::{test_runner::TestRng, Strategy};

    /// Accepted as the size argument of [`vec()`]: a fixed count or a range.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.clone().generate(rng)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.clone().generate(rng)
        }
    }

    /// Strategy producing a `Vec` whose elements come from `element`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Deterministic SplitMix64 stream, seeded from the test name so
    /// every test draws an independent but reproducible sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_name(name: &str) -> TestRng {
            // FNV-1a over the test name gives a stable per-test seed
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)` (53 high bits).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Runs every `#[test] fn name(pat in strategy, ...)` item inside it
/// `cases` times with freshly drawn inputs. No shrinking: failures report
/// the case index.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..cfg.cases {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let run = || -> () { $body };
                    if let Err(e) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                        eprintln!("proptest: {} failed at case {}/{}", stringify!($name), case, cfg.cases);
                        ::std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Arbitrary, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_vec_sample_in_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("bounds");
        let s = crate::collection::vec(-2.0f32..2.0, 1..9);
        for _ in 0..200 {
            let v = Strategy::generate(&s, &mut rng);
            assert!(!v.is_empty() && v.len() < 9);
            assert!(v.iter().all(|x| (-2.0..2.0).contains(x)));
        }
    }

    #[test]
    fn flat_map_links_sizes() {
        let mut rng = crate::test_runner::TestRng::from_name("flat");
        let s = (1usize..=5).prop_flat_map(|n| {
            crate::collection::vec(0i64..10, n).prop_map(move |v| (n, v))
        });
        for _ in 0..100 {
            let (n, v) = Strategy::generate(&s, &mut rng);
            assert_eq!(v.len(), n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_draws_and_asserts(x in 0u32..100, flip in any::<bool>()) {
            prop_assert!(x < 100);
            prop_assert_eq!(flip as u32 * 2 + x % 2, flip as u32 * 2 + x % 2);
        }
    }
}
