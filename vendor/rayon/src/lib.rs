//! Offline stand-in for `rayon` covering the workspace's call surface:
//! `par_iter` / `par_iter_mut` / `par_chunks_mut` with `zip` / `enumerate` /
//! `map` / `for_each` chains, plus `current_num_threads`.
//!
//! Work really runs in parallel: items are collected and dispatched to
//! `std::thread::scope` workers in contiguous batches (one per hardware
//! thread). There is no work-stealing pool — fine for the coarse band/slab
//! decompositions this workspace uses.

/// Number of worker threads parallel operations will use.
pub fn current_num_threads() -> usize {
    // Honour RAYON_NUM_THREADS like the real rayon's default pool does —
    // benches use it to measure thread scaling without a ThreadPoolBuilder.
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// A "parallel" iterator: a thin wrapper that defers to real threads only
/// at the terminal `for_each`/`collect` call.
pub struct ParIter<I>(I);

impl<I: Iterator> ParIter<I> {
    pub fn zip<J: Iterator>(self, other: ParIter<J>) -> ParIter<std::iter::Zip<I, J>> {
        ParIter(self.0.zip(other.0))
    }

    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    pub fn map<B, F: FnMut(I::Item) -> B>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    pub fn for_each<F>(self, f: F)
    where
        I::Item: Send,
        F: Fn(I::Item) + Send + Sync,
    {
        let mut items: Vec<I::Item> = self.0.collect();
        let workers = current_num_threads().min(items.len().max(1));
        if workers <= 1 {
            items.into_iter().for_each(f);
            return;
        }
        let chunk = items.len().div_ceil(workers);
        std::thread::scope(|scope| {
            let f = &f;
            while !items.is_empty() {
                let take = items.len().min(chunk);
                let batch: Vec<I::Item> = items.drain(..take).collect();
                scope.spawn(move || batch.into_iter().for_each(f));
            }
        });
    }

    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }
}

/// `par_chunks_mut` on slices.
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter(self.chunks_mut(chunk_size))
    }
}

/// `par_iter` / `par_iter_mut` on slices.
pub trait ParallelIterExt<T> {
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>>;
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>>;
}

impl<T> ParallelIterExt<T> for [T] {
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
        ParIter(self.iter())
    }

    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>> {
        ParIter(self.iter_mut())
    }
}

pub mod prelude {
    pub use crate::{ParIter, ParallelIterExt, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_iter_mut_touches_everything() {
        let mut v: Vec<usize> = (0..1000).collect();
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i + 1));
    }

    #[test]
    fn chunk_zip_enumerate_chain() {
        let mut a = [0u32; 12];
        let mut b = [0u32; 12];
        a.par_chunks_mut(4)
            .zip(b.par_chunks_mut(4))
            .enumerate()
            .for_each(|(i, (ca, cb))| {
                for x in ca.iter_mut() {
                    *x = i as u32;
                }
                cb[0] = 10 + i as u32;
            });
        assert_eq!(a[0], 0);
        assert_eq!(a[5], 1);
        assert_eq!(a[11], 2);
        assert_eq!(b[8], 12);
    }

    #[test]
    fn work_actually_spreads_across_threads() {
        let touched = AtomicUsize::new(0);
        let mut v = [0u8; 64];
        v.par_iter_mut().for_each(|_| {
            touched.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(touched.load(Ordering::SeqCst), 64);
    }
}
